"""Tests for dynamic fabric failures with online rerouting (repro.faults).

The heart is the differential oracle: every faulted run must agree (1e-9)
with a hand-stitched sequence of piecewise-static degraded runs — the fabric
materialized per fault epoch, residual bytes carried across the boundary,
rates from the retained scalar reference (:mod:`repro.simulator.reference`).
Around it: zero-fault byte-identity with today's engine, seeded fuzz
invariants (monotonicity under added failures, no-op recoveries, canonical
hashing, the per-epoch incidence check), spec-grammar errors, adversarial
search determinism, and the scenario/sweep/CLI wiring.
"""

import random
from pathlib import Path

import networkx as nx
import numpy as np
import pytest

from repro.constants import SIM_BYTES_EPS, SIM_EPS
from repro.experiments import Plan, Scenario, run_sweep
from repro.faults import (
    FaultSpec,
    PreparedFaultContext,
    StrandedScheduleError,
    capture_fault_prefix,
    parse_fault_spec,
    ranked_physical_links,
    repair_path,
    run_faulted,
    surviving_adjacency,
    worst_case_failures,
)
from repro.faults.spec import FaultEvent, FaultTimeline
from repro.faults.reroute import effective_path
from repro.perf import set_delta_enabled, set_fill_kernel
from repro.simulator import (
    FluidFlow,
    cerio_hpc_fabric,
    fabric_from_spec,
    run_routed_collective,
)
from repro.simulator.reference import max_min_rates_reference
from repro.topology import from_spec

GOLDEN = Path(__file__).parent / "golden"

KERNELS = ("numba", "numpy", "python-csr")


@pytest.fixture()
def kernel_guard():
    """Restore env-driven kernel selection after a forced-kernel test."""
    yield
    set_fill_kernel(None)


@pytest.fixture()
def delta_guard():
    """Restore env-driven REPRO_DELTA selection after a forced-mode test."""
    yield
    set_delta_enabled(None)


@pytest.fixture()
def delta_on():
    """Force the delta engine on for tests that exercise it specifically.

    CI re-runs this whole file under ``REPRO_DELTA=off``; delta-internals
    tests must not silently degrade to the oracle path there.
    """
    set_delta_enabled(True)
    yield
    set_delta_enabled(None)


def _lowered(topology: str, scheme: str = "ewsp"):
    """Synthesize + lower one scenario to its RoutedSchedule."""
    return Plan(Scenario(topology=topology, scheme=scheme,
                         max_denominator=16)).run("lower").lowered


def piecewise_static_oracle(schedule, buffer_bytes, spec, fabric):
    """Hand-stitched oracle: one static scalar run per fault epoch.

    Materializes the effective fabric at every epoch boundary, recomputes
    each survivor's route (original if clear, BFS repair otherwise), and
    advances the scalar reference's progressive-filling loop inside the
    epoch, carrying residual bytes across boundaries.  Stranded flows park.
    Mirrors the engine's thresholds (SIM_EPS / SIM_BYTES_EPS) and its
    latency rule: completion latency from the *originally planned* route.
    """
    spec = parse_fault_spec(spec) if isinstance(spec, str) else spec
    timeline = FaultTimeline(spec)
    topo = schedule.topology
    edges = tuple(topo.edges)
    shard = buffer_bytes / topo.num_nodes
    orig = [tuple(a.route) for a in schedule.assignments]
    sizes = [a.chunk.bytes(shard) for a in schedule.assignments]
    delays = [fabric.per_message_overhead + (len(p) - 1) * fabric.per_hop_latency
              for p in orig]
    remaining = list(sizes)
    completion = [0.0 if sizes[i] > SIM_EPS else delays[i]
                  for i in range(len(orig))]
    active = {i for i in range(len(orig)) if sizes[i] > SIM_EPS}

    now = 0.0
    epoch_times = [0.0] + list(timeline.epochs)
    for idx, t0 in enumerate(epoch_times):
        t_next = (epoch_times[idx + 1] if idx + 1 < len(epoch_times)
                  else float("inf"))
        epoch_fabric = timeline.fabric_at(fabric, t0, edges)
        down = set(epoch_fabric.down_links)
        adjacency = surviving_adjacency(topo, down)
        paths = {}
        for i in sorted(active):
            paths[i] = effective_path(orig[i], down, adjacency)
        while True:
            live = [i for i in sorted(active) if paths[i] is not None]
            if not live:
                break
            flows = [FluidFlow(path=paths[i], size_bytes=remaining[i])
                     for i in live]
            rates = max_min_rates_reference(flows, list(range(len(live))),
                                            topo, epoch_fabric)
            dts = [remaining[i] / rates[j] for j, i in enumerate(live)
                   if rates[j] > SIM_EPS]
            if not dts:
                raise RuntimeError("oracle stalled: live flows have zero rate")
            dt = min(min(dts), t_next - now)
            for j, i in enumerate(live):
                remaining[i] -= rates[j] * dt
            now += dt
            for i in list(live):
                if remaining[i] <= SIM_BYTES_EPS:
                    remaining[i] = 0.0
                    completion[i] = now + delays[i]
                    active.discard(i)
            if now >= t_next:
                break
        if not active:
            break
        now = max(now, min(t_next, max(completion)) if t_next == float("inf")
                  else t_next)
        if t_next != float("inf"):
            now = t_next
    if active:
        raise StrandedScheduleError(sorted(active),
                                    sum(remaining[i] for i in active))
    return max(completion), completion


def _random_fault_spec(topology, rng, baseline_seconds, allow_recovery=True):
    """A random non-stranding fault schedule inside the baseline window.

    Symmetric links are failed one by one while the survivor graph stays
    connected; some failures recover at a later epoch.
    """
    graph = nx.DiGraph()
    graph.add_nodes_from(topology.nodes)
    graph.add_edges_from(topology.edges)
    sym_links = sorted({tuple(sorted(e)) for e in topology.edges})
    rng.shuffle(sym_links)
    downs = []
    for (u, v) in sym_links:
        if len(downs) >= 2:
            break
        removed = [e for e in ((u, v), (v, u)) if graph.has_edge(*e)]
        graph.remove_edges_from(removed)
        if nx.is_strongly_connected(graph):
            downs.append((u, v))
        else:
            graph.add_edges_from(removed)
    parts = []
    for (u, v) in downs:
        t_us = rng.uniform(0.05, 0.8) * baseline_seconds * 1e6
        parts.append(f"down={u}~{v}@{t_us:.3f}us")
        if allow_recovery and rng.random() < 0.5:
            t_up = rng.uniform(t_us / 1e6, 1.2 * baseline_seconds) * 1e6
            parts.append(f"up={u}~{v}@{t_up:.3f}us")
    if rng.random() < 0.5:
        (u, v) = rng.choice(sym_links)
        t_us = rng.uniform(0.05, 0.8) * baseline_seconds * 1e6
        parts.append(f"scale={u}~{v}*0.5@{t_us:.3f}us")
    return "faults:" + ":".join(parts) if parts else "faults:up@0"


class TestDifferentialOracle:
    """Faulted runs agree with the piecewise-static oracle within 1e-9."""

    CASES = [("ring:n=6", "ewsp"), ("hypercube:dim=3", "ewsp"),
             ("torus:dims=3x3", "ewsp"), ("hypercube:dim=3", "mcf-extp")]

    @pytest.mark.parametrize("topology,scheme", CASES)
    def test_randomized_fault_schedules_agree(self, topology, scheme):
        schedule = _lowered(topology, scheme)
        fabric = cerio_hpc_fabric()
        buf = 2 ** 20
        baseline = run_routed_collective(schedule, buf, fabric=fabric,
                                         validate=False).completion_time
        topo = from_spec(topology)
        for seed in range(3):
            rng = random.Random(f"{topology}/{scheme}/{seed}")
            spec = _random_fault_spec(topo, rng, baseline)
            res = run_faulted(schedule, buf, spec, fabric=fabric,
                              validate=False, baseline_seconds=baseline)
            want, _ = piecewise_static_oracle(schedule, buf, spec, fabric)
            assert res.completion_time == pytest.approx(want, abs=1e-9), spec

    @pytest.mark.parametrize("kernel", KERNELS)
    def test_all_kernels_agree_with_oracle(self, kernel, kernel_guard):
        set_fill_kernel(kernel)
        schedule = _lowered("hypercube:dim=3", "mcf-extp")
        fabric = cerio_hpc_fabric()
        spec = "faults:down=0~1@10us:down=2~3@30us:up=0~1@60us"
        res = run_faulted(schedule, 2 ** 20, spec, fabric=fabric,
                          validate=False)
        want, _ = piecewise_static_oracle(schedule, 2 ** 20, spec, fabric)
        assert res.completion_time == pytest.approx(want, abs=1e-9)

    def test_degraded_base_fabric_composes_with_faults(self):
        # Fault-layer downs stack on top of a statically degraded base.
        schedule = _lowered("hypercube:dim=3")
        fabric = fabric_from_spec("hpc:scale=0~2:0.5")
        spec = "faults:down=0~1@20us"
        res = run_faulted(schedule, 2 ** 20, spec, fabric=fabric,
                          validate=False)
        want, _ = piecewise_static_oracle(schedule, 2 ** 20, spec, fabric)
        assert res.completion_time == pytest.approx(want, abs=1e-9)

    def test_recovery_after_stranding_resumes_flows(self):
        # Disconnect node 5 of a ring entirely, then recover: flows park
        # while stranded and finish after the link comes back.
        schedule = _lowered("ring:n=6")
        fabric = cerio_hpc_fabric()
        spec = "faults:down=4~5|5~0@5us:up@100us"
        res = run_faulted(schedule, 2 ** 20, spec, fabric=fabric,
                          validate=False, collect_trace=True)
        want, _ = piecewise_static_oracle(schedule, 2 ** 20, spec, fabric)
        assert res.completion_time == pytest.approx(want, abs=1e-9)
        assert res.completion_time > 100e-6
        assert any(rec.stranded for rec in res.meta["epoch_trace"])

    def test_stranded_without_recovery_raises(self):
        schedule = _lowered("ring:n=6")
        with pytest.raises(StrandedScheduleError, match="allow_stranded"):
            run_faulted(schedule, 2 ** 20, "faults:down=4~5|5~0@5us",
                        fabric=cerio_hpc_fabric(), validate=False)

    def test_allow_stranded_reports_infinite_slowdown(self):
        schedule = _lowered("ring:n=6")
        res = run_faulted(schedule, 2 ** 20, "faults:down=4~5|5~0@5us",
                          fabric=cerio_hpc_fabric(), validate=False,
                          allow_stranded=True)
        assert res.completion_time == float("inf")
        assert res.meta["robustness_slowdown"] == float("inf")
        assert res.meta["stranded_bytes"] > 0


class TestDeltaEngine:
    """The incremental delta engine vs the recompile-from-scratch oracle."""

    CASES = [("ring:n=6", "ewsp"), ("hypercube:dim=3", "ewsp"),
             ("torus:dims=3x3", "ewsp")]

    @pytest.mark.parametrize("topology,scheme", CASES)
    def test_delta_program_matches_fresh_compile_every_epoch(
            self, topology, scheme, delta_on):
        """Fuzz: delta-edited arenas == fresh ``compile_flows``, per epoch.

        Replays the epoch trace of randomized faulted runs through a fresh
        :class:`DeltaProgram` and asserts that after every ``apply`` the
        live flows' incidence slots and the real-resource capacities are
        element-identical to compiling the survivors from scratch against
        the epoch fabric.
        """
        from repro.simulator.engine import compile_flows

        schedule = _lowered(topology, scheme)
        fabric = cerio_hpc_fabric()
        buf = 2 ** 20
        baseline = run_routed_collective(schedule, buf, fabric=fabric,
                                         validate=False).completion_time
        topo = from_spec(topology)
        edges = tuple(topo.edges)
        for seed in range(4):
            rng = random.Random(f"delta/{topology}/{scheme}/{seed}")
            spec = _random_fault_spec(topo, rng, baseline)
            if parse_fault_spec(spec).trivial:
                continue      # nothing to replay (e.g. unbreakable ring)
            res = run_faulted(schedule, buf, spec, fabric=fabric,
                              validate=False, baseline_seconds=baseline,
                              collect_trace=True)
            assert res.meta["delta"] == "on"
            context = PreparedFaultContext(schedule, fabric)
            delta = context.delta_program()
            timeline = FaultTimeline(parse_fault_spec(spec))
            for rec in res.meta["epoch_trace"]:
                epoch_fabric = timeline.fabric_at(fabric, rec.time, edges)
                paths = [rec.paths.get(i) for i in range(context.num_flows)]
                delta.apply(epoch_fabric, paths)
                live = sorted(rec.paths)
                fresh = compile_flows(
                    topo,
                    [FluidFlow(path=rec.paths[i], size_bytes=1.0)
                     for i in live],
                    epoch_fabric, include_latency=False)
                fptr = np.concatenate(
                    [[0], np.cumsum(np.bincount(fresh.inc_flow,
                                                minlength=len(live)))])
                for j, i in enumerate(live):
                    want = fresh.inc_res[fptr[j]:fptr[j + 1]]
                    s = int(delta._starts[i])
                    got = delta.ent_res[s:s + int(delta._lens[i])]
                    np.testing.assert_array_equal(got, want, err_msg=(
                        f"{spec}: flow {i} slots diverge at t={rec.time}"))
                    pad = delta.ent_res[s + int(delta._lens[i]):
                                        s + int(delta._caps[i])]
                    assert (pad == delta.slack).all()
                np.testing.assert_array_equal(
                    delta.res_cap[:delta.num_real_res], fresh.res_cap,
                    err_msg=f"{spec}: capacities diverge at t={rec.time}")

    @pytest.mark.parametrize("kernel", KERNELS)
    def test_oracle_mode_matches_delta_within_1e9(self, kernel, kernel_guard,
                                                  delta_guard):
        """``REPRO_DELTA=off`` agrees with delta runs under every kernel."""
        set_fill_kernel(kernel)
        schedule = _lowered("hypercube:dim=3")
        fabric = cerio_hpc_fabric()
        buf = 2 ** 20
        baseline = run_routed_collective(schedule, buf, fabric=fabric,
                                         validate=False).completion_time
        topo = from_spec("hypercube:dim=3")
        for seed in range(3):
            rng = random.Random(f"mode/{kernel}/{seed}")
            spec = _random_fault_spec(topo, rng, baseline)
            set_delta_enabled(True)
            on = run_faulted(schedule, buf, spec, fabric=fabric,
                             validate=False, baseline_seconds=baseline)
            set_delta_enabled(False)
            off = run_faulted(schedule, buf, spec, fabric=fabric,
                              validate=False, baseline_seconds=baseline)
            assert on.meta["delta"] == "on" and off.meta["delta"] == "off"
            assert abs(on.completion_time
                       - off.completion_time) <= 1e-9, spec
            for key in ("reroute_count", "fault_events", "fill_rounds",
                        "vc_layers", "stranded_bytes", "events"):
                assert on.meta[key] == off.meta[key], (spec, key)

    def test_prefix_resume_is_identical_to_full_run(self, delta_on):
        """Resuming from a captured healthy prefix changes nothing."""
        schedule = _lowered("hypercube:dim=3")
        fabric = cerio_hpc_fabric()
        buf = 2 ** 20
        context = PreparedFaultContext(schedule, fabric)
        baseline = run_routed_collective(schedule, buf, fabric=fabric,
                                         validate=False).completion_time
        at = 0.5 * baseline
        spec = FaultSpec(events=(FaultEvent(time=at, kind="down",
                                            links=((0, 1), (1, 0))),))
        full = run_faulted(schedule, buf, spec, fabric=fabric,
                           validate=False, context=context,
                           baseline_seconds=baseline)
        prefix = capture_fault_prefix(context, buf, at, vc=spec.vc)
        resumed = run_faulted(schedule, buf, spec, fabric=fabric,
                              validate=False, context=context,
                              baseline_seconds=baseline, _prefix=prefix)
        assert resumed.completion_time == full.completion_time
        assert resumed.meta["fill_rounds"] == full.meta["fill_rounds"]
        assert resumed.meta["events"] == full.meta["events"]
        assert resumed.meta["reroute_count"] == full.meta["reroute_count"]

    def test_prefix_not_matching_first_epoch_raises(self, delta_on):
        schedule = _lowered("hypercube:dim=3")
        fabric = cerio_hpc_fabric()
        buf = 2 ** 20
        context = PreparedFaultContext(schedule, fabric)
        prefix = capture_fault_prefix(context, buf, 1e-6, vc="lash")
        spec = FaultSpec(events=(FaultEvent(time=2e-6, kind="down",
                                            links=((0, 1), (1, 0))),))
        with pytest.raises(ValueError, match="prefix"):
            run_faulted(schedule, buf, spec, fabric=fabric, validate=False,
                        context=context, _prefix=prefix)

    def test_context_schedule_and_fabric_guards(self):
        schedule = _lowered("hypercube:dim=3")
        other = _lowered("ring:n=6")
        fabric = cerio_hpc_fabric()
        context = PreparedFaultContext(schedule, fabric)
        with pytest.raises(ValueError, match="different schedule"):
            run_faulted(other, 2 ** 20, "faults:down=0~1@5us",
                        fabric=fabric, validate=False, context=context)
        with pytest.raises(ValueError, match="different fabric"):
            run_faulted(schedule, 2 ** 20, "faults:down=0~1@5us",
                        fabric=fabric_from_spec("hpc:scale=0~1:0.5"),
                        validate=False, context=context)

    def test_shared_context_hits_the_reroute_cache(self, delta_on):
        """A second identical run serves repairs/certs from the cache."""
        schedule = _lowered("hypercube:dim=3")
        fabric = cerio_hpc_fabric()
        spec = "faults:down=0~1@10us:up@40us:down=0~1@80us"
        context = PreparedFaultContext(schedule, fabric)
        first = run_faulted(schedule, 2 ** 20, spec, fabric=fabric,
                            validate=False, context=context)
        second = run_faulted(schedule, 2 ** 20, spec, fabric=fabric,
                             validate=False, context=context)
        assert second.completion_time == first.completion_time
        assert first.meta["route_cache_misses"] > 0
        assert second.meta["route_cache_misses"] == 0
        assert second.meta["route_cache_hits"] > 0
        assert context.reroute_cache.hits >= second.meta["route_cache_hits"]

    def test_flapping_timeline_reuses_delta_state(self, delta_on):
        """Revisited fabric states patch in place: hits, no rebuilds."""
        schedule = _lowered("hypercube:dim=3")
        fabric = cerio_hpc_fabric()
        parts = []
        for i in range(6):
            parts.append(f"down=0~1@{10 + 12 * i}us")
            parts.append(f"up@{16 + 12 * i}us")
        res = run_faulted(schedule, 2 ** 20, "faults:" + ":".join(parts),
                          fabric=fabric, validate=False)
        assert res.meta["delta"] == "on"
        assert res.meta["delta_hits"] + res.meta["delta_rebuilds"] > 0
        # After the first down/up pair every state has been seen: the
        # remaining epochs must all be in-place hits.
        assert res.meta["delta_hits"] >= 8

    def test_engine_counters_and_footer_carry_delta_stats(self, delta_on):
        from repro.analysis.report import format_engine_footer
        from repro.simulator.engine import (engine_counters,
                                            reset_engine_counters)

        reset_engine_counters()
        try:
            schedule = _lowered("hypercube:dim=3")
            run_faulted(schedule, 2 ** 20, "faults:down=0~1@10us:up@40us",
                        fabric=cerio_hpc_fabric(), validate=False)
            stats = engine_counters()
            assert stats["fabric_events"] > 0
            assert stats["delta_hits"] + stats["delta_rebuilds"] > 0
            assert stats["route_cache_hits"] + stats["route_cache_misses"] > 0
            assert stats["compile_seconds"] >= 0.0
            assert stats["reroute_seconds"] > 0.0
            footer = format_engine_footer(
                {"hits": 0, "misses": 0, "disk_hits": 0, "backend": "x"},
                {"hits": 0, "misses": 0}, sim_stats=stats)
            assert "fabric events" in footer
            assert "delta:" in footer and "route-cache:" in footer
            assert "compile" in footer and "reroute]" in footer
        finally:
            reset_engine_counters()

    def test_repro_delta_env_values(self, monkeypatch, delta_guard):
        from repro.perf import delta_enabled

        set_delta_enabled(None)
        monkeypatch.setenv("REPRO_DELTA", "off")
        assert delta_enabled() is False
        monkeypatch.setenv("REPRO_DELTA", "on")
        assert delta_enabled() is True
        monkeypatch.setenv("REPRO_DELTA", "sideways")
        with pytest.raises(ValueError, match="REPRO_DELTA"):
            delta_enabled()
        set_delta_enabled(False)   # override beats the (invalid) env
        assert delta_enabled() is False

    def test_adversarial_serial_parallel_and_oracle_agree(self, delta_guard):
        """Serial, ``jobs=3`` and oracle searches return identical tables."""
        schedule = _lowered("hypercube:dim=3")
        fabric = cerio_hpc_fabric()
        buf = 2 ** 20
        context = PreparedFaultContext(schedule, fabric)
        set_delta_enabled(True)
        serial = worst_case_failures(schedule, buf, k=2, fabric=fabric,
                                     candidates=5, context=context)
        parallel = worst_case_failures(schedule, buf, k=2, fabric=fabric,
                                       candidates=5, jobs=3, context=context)
        set_delta_enabled(False)
        oracle = worst_case_failures(schedule, buf, k=2, fabric=fabric,
                                     candidates=5, context=context)
        table = lambda a: [(ev["links"], ev["slowdown"], ev["reroute_count"])
                           for ev in a.evaluations]       # noqa: E731
        assert serial.worst_links == parallel.worst_links == oracle.worst_links
        assert table(serial) == table(parallel)
        for (l1, s1, r1), (l2, s2, r2) in zip(table(serial), table(oracle)):
            assert l1 == l2 and r1 == r2
            assert abs(s1 - s2) <= 1e-9


class TestZeroFaultIdentity:
    """No-op fault timelines reproduce today's engine byte-for-byte."""

    @pytest.mark.parametrize("spec", ["faults:up@0", "faults:up@0:seed=3",
                                      "faults:up=0~1@0"])
    def test_trivial_specs_delegate_to_plain_engine(self, spec):
        schedule = _lowered("hypercube:dim=3", "mcf-extp")
        fabric = cerio_hpc_fabric()
        plain = run_routed_collective(schedule, 2 ** 20, fabric=fabric,
                                      validate=False)
        faulted = run_faulted(schedule, 2 ** 20, spec, fabric=fabric,
                              validate=False)
        assert faulted.completion_time == plain.completion_time  # exact
        assert faulted.throughput == plain.throughput
        assert faulted.meta["robustness_slowdown"] == 1.0
        assert faulted.meta["reroute_count"] == 0
        assert faulted.meta["fault_events"] == 0

    def test_zero_fault_scenario_metrics_match_plain(self):
        base = Scenario(topology="hypercube:dim=2", scheme="ewsp",
                        buffers=(2 ** 20,))
        trivial = Scenario(topology="hypercube:dim=2", scheme="ewsp",
                           buffers=(2 ** 20,), faults="faults:up@0")
        t_plain = Plan(base).run().sim_results[0].completion_time
        t_triv = Plan(trivial).run().sim_results[0].completion_time
        assert t_triv == t_plain  # exact, not approx


class TestFuzzInvariants:
    """Seeded property tests over the fault model."""

    def test_completion_monotone_in_added_down_events(self):
        schedule = _lowered("hypercube:dim=3", "mcf-extp")
        fabric = cerio_hpc_fabric()
        buf = 2 ** 20
        baseline = run_routed_collective(schedule, buf, fabric=fabric,
                                         validate=False).completion_time
        # Disjoint hypercube links added one at a time, same instant.
        links = ["0~1", "2~3", "4~5"]
        prev = baseline
        for k in range(1, len(links) + 1):
            spec = f"faults:down={'|'.join(links[:k])}@40us"
            t = run_faulted(schedule, buf, spec, fabric=fabric,
                            validate=False,
                            baseline_seconds=baseline).completion_time
            assert t >= prev - 1e-12
            prev = t

    def test_up_at_zero_is_a_noop(self):
        schedule = _lowered("hypercube:dim=3")
        fabric = cerio_hpc_fabric()
        spec = "faults:down=0~1@10us"
        with_up = "faults:up=4~5@0:down=0~1@10us"
        a = run_faulted(schedule, 2 ** 20, spec, fabric=fabric, validate=False)
        b = run_faulted(schedule, 2 ** 20, with_up, fabric=fabric,
                        validate=False)
        assert a.completion_time == b.completion_time

    def test_canonical_hash_stable_under_key_reordering(self):
        a = parse_fault_spec("faults:down=0~1@0.5ms:up@1.2ms:seed=7")
        b = parse_fault_spec("faults:seed=7:up@1.2ms:down=0~1@0.5ms")
        assert a.canonical() == b.canonical()
        assert a == b
        sa = Scenario(topology="ring:n=4", scheme="ewsp", buffers=(2 ** 20,),
                      faults="faults:down=0~1@0.5ms:up@1.2ms:seed=7")
        sb = Scenario(topology="ring:n=4", scheme="ewsp", buffers=(2 ** 20,),
                      faults="faults:seed=7:up@1.2ms:down=0~1@0.5ms")
        assert sa.key() == sb.key()
        assert sa.stage_key("simulate") == sb.stage_key("simulate")

    def test_no_flow_routes_across_a_down_link(self):
        # Per-epoch incidence check over randomized schedules.
        schedule = _lowered("hypercube:dim=3", "mcf-extp")
        fabric = cerio_hpc_fabric()
        baseline = run_routed_collective(schedule, 2 ** 20, fabric=fabric,
                                         validate=False).completion_time
        topo = from_spec("hypercube:dim=3")
        for seed in range(4):
            rng = random.Random(1000 + seed)
            spec = _random_fault_spec(topo, rng, baseline)
            res = run_faulted(schedule, 2 ** 20, spec, fabric=fabric,
                              validate=False, collect_trace=True,
                              baseline_seconds=baseline)
            trace = res.meta["epoch_trace"]
            assert trace, "expected at least the initial epoch record"
            for rec in trace:
                down = set(rec.down)
                for fid, path in rec.paths.items():
                    hops = set(zip(path, path[1:]))
                    assert not (hops & down), (
                        f"flow {fid} crosses {hops & down} at t={rec.time}")

    def test_fault_epochs_increase_vc_layers_at_most(self):
        schedule = _lowered("hypercube:dim=3", "mcf-extp")
        res = run_faulted(schedule, 2 ** 20, "faults:down=0~1@10us",
                          fabric=cerio_hpc_fabric(), validate=False)
        assert res.meta["vc_layers"] >= 1


class TestSpecGrammar:
    def test_time_suffixes(self):
        spec = parse_fault_spec("faults:down=0~1@1ms:up=0~1@2500us:scale=2-3*0.5@1.5s")
        times = sorted(e.time for e in spec.events)
        assert times == pytest.approx([0.001, 0.0025, 1.5])

    def test_unknown_key_rejected(self):
        with pytest.raises(ValueError, match="unknown fault spec key"):
            parse_fault_spec("faults:explode=1@1ms")

    def test_duplicate_seed_rejected(self):
        with pytest.raises(ValueError, match="seed"):
            parse_fault_spec("faults:seed=1:seed=2")

    def test_missing_prefix_rejected(self):
        with pytest.raises(ValueError, match="faults:"):
            parse_fault_spec("down=0~1@1ms")

    def test_non_positive_scale_rejected(self):
        with pytest.raises(ValueError, match="must be > 0"):
            parse_fault_spec("faults:scale=0~1*0@1ms")

    def test_straggler_expands_to_incident_links(self):
        spec = parse_fault_spec("faults:straggler=3*0.25@1ms")
        topo = from_spec("hypercube:dim=3")
        down, factors = FaultTimeline(spec).state_at(0.002, tuple(topo.edges))
        assert not down
        assert factors and all(3 in link for link in factors)
        assert all(f == pytest.approx(0.25) for f in factors.values())

    def test_simultaneous_up_down_leaves_link_down(self):
        # Canonical order fires "up" before "down" at equal times.
        spec = parse_fault_spec("faults:down=0~1@1ms:up=0~1@1ms")
        topo = from_spec("ring:n=4")
        down, _ = FaultTimeline(spec).state_at(0.001, tuple(topo.edges))
        assert down == {(0, 1), (1, 0)}

    def test_repr_roundtrip_via_canonical(self):
        spec = parse_fault_spec("faults:down=0~1@0.5ms")
        assert isinstance(spec, FaultSpec)
        assert spec.canonical()[0] == "faults"


class TestReroute:
    def test_repair_path_is_lexicographically_smallest_shortest(self):
        topo = from_spec("hypercube:dim=3")
        adjacency = surviving_adjacency(topo, {(0, 1), (1, 0)})
        path = repair_path(0, 1, adjacency)
        # Shortest detours are 0-2-3-1 / 0-4-5-1; BFS picks the smallest.
        assert path == (0, 2, 3, 1)

    def test_repair_path_none_when_disconnected(self):
        topo = from_spec("ring:n=4")
        down = {(0, 1), (1, 0), (1, 2), (2, 1)}
        assert repair_path(0, 1, surviving_adjacency(topo, down)) is None

    def test_effective_path_prefers_original(self):
        topo = from_spec("ring:n=4")
        adjacency = surviving_adjacency(topo, set())
        assert effective_path((0, 1, 2), set(), adjacency) == (0, 1, 2)


class TestAdversarial:
    def test_exhaustive_search_is_deterministic_and_worst_first(self):
        schedule = _lowered("hypercube:dim=3", "mcf-extp")
        a = worst_case_failures(schedule, 2 ** 20, k=1, candidates=4,
                                mode="exhaustive")
        b = worst_case_failures(schedule, 2 ** 20, k=1, candidates=4,
                                mode="exhaustive")
        assert a.worst_links == b.worst_links
        assert a.worst_slowdown == b.worst_slowdown
        assert a.worst_slowdown >= 1.0
        assert len(a.evaluations) == 4

    def test_greedy_mode_evaluates_fewer_sets(self):
        schedule = _lowered("hypercube:dim=3", "mcf-extp")
        greedy = worst_case_failures(schedule, 2 ** 20, k=2, candidates=4,
                                     mode="greedy")
        assert greedy.k == 2 and len(greedy.worst_links) == 2
        assert greedy.worst_slowdown >= 1.0

    def test_disconnection_is_worst_case(self):
        # On a ring, any 2-link cut disconnects: slowdown must be inf.
        schedule = _lowered("ring:n=4")
        res = worst_case_failures(schedule, 2 ** 20, k=2, candidates=4,
                                  mode="exhaustive")
        assert res.worst_slowdown == float("inf")

    def test_ranked_links_cover_schedule_load(self):
        schedule = _lowered("hypercube:dim=3", "mcf-extp")
        ranked = ranked_physical_links(schedule, 2 ** 20)
        loads = [load for _link, load in ranked]
        assert loads == sorted(loads, reverse=True)

    def test_worst_spec_is_parseable(self):
        schedule = _lowered("hypercube:dim=3", "mcf-extp")
        res = worst_case_failures(schedule, 2 ** 20, k=1, candidates=3)
        spec = res.worst_spec()
        assert isinstance(spec, FaultSpec)
        downs = [e for e in spec.events if e.kind == "down"]
        assert downs and downs[0].time == pytest.approx(res.at_seconds)
        failed = {tuple(sorted(link)) for e in downs for link in e.links}
        assert failed == set(res.worst_links)


class TestScenarioWiring:
    def test_faults_enter_simulate_stage_key_only(self):
        base = Scenario(topology="hypercube:dim=3", scheme="mcf-extp",
                        buffers=(2 ** 20,))
        faulted = Scenario(topology="hypercube:dim=3", scheme="mcf-extp",
                           buffers=(2 ** 20,), faults="faults:down=0~1@10us")
        for stage in ("synthesize", "lower", "validate"):
            assert base.stage_key(stage) == faulted.stage_key(stage)
        assert base.stage_key("simulate") != faulted.stage_key("simulate")
        assert base.key() != faulted.key()

    def test_invalid_faults_rejected_eagerly(self):
        with pytest.raises(ValueError, match="unknown fault spec key"):
            Scenario(topology="ring:n=4", faults="faults:bogus=1@1ms")

    def test_faults_and_cluster_mutually_exclusive(self):
        with pytest.raises(ValueError, match="cluster"):
            Scenario(topology="ring:n=4", faults="faults:down=0~1@1ms",
                     cluster="cluster:jobs=2:arrival=poisson~100"
                             ":placement=packed:seed=0")

    def test_faults_and_overlap_mutually_exclusive(self):
        with pytest.raises(ValueError, match="overlap"):
            Scenario(topology="ring:n=4", faults="faults:down=0~1@1ms",
                     overlap=2)

    def test_sweep_record_carries_fault_metrics(self, tmp_path):
        scenario = Scenario(topology="hypercube:dim=2", scheme="ewsp",
                            buffers=(2 ** 20,), faults="faults:down=0~1@5us")
        record = run_sweep([scenario],
                           out_path=str(tmp_path / "f.jsonl"))[0]
        assert record.status == "ok"
        assert record.metrics["robustness_slowdown"] >= 1.0
        assert record.metrics["reroute_count"] >= 1
        assert record.metrics["fault_events"] == 1
        assert record.metrics["stranded_bytes"] == 0.0

    def test_faulted_sweep_shares_synthesized_schedule(self, tmp_path):
        # The warm re-run over a faults grid must solve zero new LPs.
        from repro.engine import get_engine, reset_engine
        from repro.experiments import reset_plan_cache

        reset_engine()
        reset_plan_cache()
        try:
            grid = [Scenario(topology="hypercube:dim=2", scheme="mcf-extp",
                             max_denominator=16, buffers=(2 ** 20,),
                             faults=f)
                    for f in (None, "faults:down=0~1@5us",
                              "faults:down=0~1@5us:up@20us")]
            run_sweep(grid, out_path=str(tmp_path / "a.jsonl"))
            engine = get_engine()
            misses = engine.cache.misses
            assert misses > 0
            results = run_sweep(grid, out_path=str(tmp_path / "b.jsonl"))
            assert engine.cache.misses == misses
            assert all(r.stage_cache["synthesize"] == "hit" for r in results)
        finally:
            reset_engine()
            reset_plan_cache()

    def test_sweep_resume_skips_completed_faulted_records(self, tmp_path):
        out = str(tmp_path / "resume.jsonl")
        grid = [Scenario(topology="hypercube:dim=2", scheme="ewsp",
                         buffers=(2 ** 20,), faults="faults:down=0~1@5us")]
        first = run_sweep(grid, out_path=out)
        assert first[0].resumed is False
        again = run_sweep(grid, out_path=out, resume=True)
        assert again[0].resumed is True
        assert len(open(out).readlines()) == 1


class TestGoldenRobustness:
    @pytest.mark.parametrize("delta", [True, False],
                             ids=["delta", "oracle"])
    def test_fig_robustness_matches_golden_file(self, delta, delta_guard):
        """Both engines reproduce the golden artifact byte-for-byte.

        The oracle leg disables the plan's stage cache so its simulate
        stages genuinely re-run under ``REPRO_DELTA=off`` instead of being
        served from the delta leg's cached artifacts.
        """
        from repro.experiments import get_plan_cache, result_from_plan
        from repro.report.specs import FIG_ROBUSTNESS

        set_delta_enabled(delta)
        cache = get_plan_cache()
        prev = cache.enabled
        cache.enabled = cache.enabled and delta
        try:
            spec = FIG_ROBUSTNESS
            results = [result_from_plan(s, Plan(s).run(through=spec.through),
                                        through=spec.through)
                       for s in spec.scenarios(fast=True)]
            out = spec.aggregate(results, fast=True)
        finally:
            cache.enabled = prev
        assert not out.errors
        expected = (GOLDEN / "fig_robustness.txt").read_text()
        assert out.tables[0].text + "\n" == expected


class TestCli:
    def test_simulate_with_faults_flag(self, capsys):
        from repro.cli import main

        assert main(["simulate", "hypercube:dim=2", "--scheme", "ewsp",
                     "--buffers", "1048576",
                     "--faults", "faults:down=0~1@5us"]) == 0
        captured = capsys.readouterr()
        assert "slowdown" in captured.out
        assert "reroute" in captured.out
        assert "fabric events" in captured.err

    def test_robustness_command(self, tmp_path, capsys):
        from repro.cli import main

        out = str(tmp_path / "rob.jsonl")
        assert main(["robustness", "hypercube:dim=2", "--scheme", "ewsp",
                     "--faults", "faults:down=0~1@5us", "--out", out]) == 0
        captured = capsys.readouterr()
        assert "slowdown" in captured.out
        assert len(open(out).readlines()) == 1

    def test_robustness_adversarial(self, capsys):
        from repro.cli import main

        assert main(["robustness", "hypercube:dim=2", "--scheme", "ewsp",
                     "--adversarial", "1", "--candidates", "2"]) == 0
        assert "worst case" in capsys.readouterr().out
