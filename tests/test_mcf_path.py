"""Tests for the path-based MCF (pMCF, §3.1.4) and PathSchedule."""

import pytest

from repro.core import solve_decomposed_mcf, solve_path_mcf, path_schedule_from_single_paths
from repro.paths import bounded_length_path_sets, edge_disjoint_path_sets, first_shortest_path_sets


class TestPMCFOptimality:
    def test_matches_link_mcf_with_all_bounded_paths(self, cube3):
        # With a rich enough path set, pMCF reaches the link-MCF optimum
        # (it is the LP dual restricted to the supplied paths).
        path_sets = bounded_length_path_sets(cube3, max_length=4)
        schedule = solve_path_mcf(cube3, path_sets)
        assert schedule.concurrent_flow == pytest.approx(0.25, rel=1e-4)

    def test_disjoint_paths_near_optimal_on_hypercube(self, cube3):
        path_sets = edge_disjoint_path_sets(cube3)
        schedule = solve_path_mcf(cube3, path_sets)
        assert schedule.concurrent_flow >= 0.25 * 0.95

    def test_disjoint_paths_near_optimal_on_genkautz(self, genkautz_3_10):
        optimal = solve_decomposed_mcf(genkautz_3_10).concurrent_flow
        schedule = solve_path_mcf(genkautz_3_10, edge_disjoint_path_sets(genkautz_3_10))
        assert schedule.concurrent_flow >= 0.9 * optimal

    def test_shortest_paths_suboptimal_on_bipartite(self, bipartite44):
        # Same-side pairs in K4,4 have many 2-hop shortest paths, so shortest-path
        # pMCF is fine here; but restricting to a single shortest path per pair
        # (the native baseline) must be strictly worse than optimum.
        optimal = solve_decomposed_mcf(bipartite44).concurrent_flow
        single = path_schedule_from_single_paths(
            bipartite44, first_shortest_path_sets(bipartite44))
        assert single.concurrent_flow < optimal - 1e-6

    def test_ring_single_path_equals_optimum(self, ring5):
        # The unidirectional ring has exactly one path per pair, so every
        # formulation coincides.
        path_sets = {c: [p] for c, p in first_shortest_path_sets(ring5).items()}
        schedule = solve_path_mcf(ring5, path_sets)
        assert schedule.concurrent_flow == pytest.approx(0.1, rel=1e-5)


class TestPMCFValidation:
    def test_missing_commodity_rejected(self, complete4):
        path_sets = edge_disjoint_path_sets(complete4)
        del path_sets[(0, 1)]
        with pytest.raises(ValueError, match="no candidate paths"):
            solve_path_mcf(complete4, path_sets)

    def test_wrong_endpoints_rejected(self, complete4):
        path_sets = edge_disjoint_path_sets(complete4)
        path_sets[(0, 1)] = [[0, 2]]
        with pytest.raises(ValueError, match="does not connect"):
            solve_path_mcf(complete4, path_sets)

    def test_path_with_missing_edge_rejected(self, cube3):
        path_sets = edge_disjoint_path_sets(cube3)
        path_sets[(0, 7)] = [[0, 7]]      # 0-7 is not an edge of the 3-cube
        with pytest.raises(ValueError, match="non-existent edge"):
            solve_path_mcf(cube3, path_sets)


class TestPathScheduleObject:
    def test_link_loads_respect_capacity(self, cube3):
        schedule = solve_path_mcf(cube3, edge_disjoint_path_sets(cube3))
        caps = cube3.capacities()
        for e, load in schedule.link_loads().items():
            assert load <= caps[e] + 1e-6
        assert schedule.max_link_utilization() <= 1.0 + 1e-6

    def test_all_to_all_time_is_inverse_flow(self, cube3):
        schedule = solve_path_mcf(cube3, edge_disjoint_path_sets(cube3))
        assert schedule.all_to_all_time() == pytest.approx(
            1.0 / schedule.concurrent_flow, rel=1e-3)

    def test_normalized_delivers_one_per_commodity(self, genkautz_extp):
        norm = genkautz_extp.normalized()
        for c in genkautz_extp.topology.commodities():
            assert norm.delivered(*c) == pytest.approx(1.0, abs=1e-9)

    def test_to_flow_solution_roundtrip(self, genkautz_extp):
        flow = genkautz_extp.to_flow_solution()
        assert flow.concurrent_flow == genkautz_extp.concurrent_flow
        for (s, d), plist in genkautz_extp.paths.items():
            assert flow.delivered(s, d) == pytest.approx(
                sum(p.weight for p in plist), abs=1e-9)

    def test_single_path_wrapper_load_derivation(self, complete4):
        routes = first_shortest_path_sets(complete4)
        schedule = path_schedule_from_single_paths(complete4, routes)
        # Complete graph: every commodity on its direct link -> max load 1, F = 1.
        assert schedule.concurrent_flow == pytest.approx(1.0)
        assert schedule.all_to_all_time() == pytest.approx(1.0)

    def test_single_path_wrapper_missing_commodity(self, complete4):
        routes = first_shortest_path_sets(complete4)
        del routes[(0, 1)]
        with pytest.raises(ValueError, match="missing path"):
            path_schedule_from_single_paths(complete4, routes)
