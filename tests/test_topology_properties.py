"""Tests for graph-property measurements (repro.topology.properties)."""

import math

import pytest

from repro.topology import (
    complete,
    generalized_kautz,
    hypercube,
    properties,
    ring,
    torus_2d,
    torus_3d,
)


class TestDistances:
    def test_total_pairwise_distance_ring(self):
        # Unidirectional ring: per source 1 + 2 + ... + (N-1).
        topo = ring(5)
        assert properties.total_pairwise_distance(topo) == 5 * (1 + 2 + 3 + 4)

    def test_total_pairwise_distance_complete(self):
        topo = complete(6)
        assert properties.total_pairwise_distance(topo) == 6 * 5

    def test_average_distance_hypercube(self):
        # Average hamming distance over ordered pairs of a 3-cube:
        # per source distances sum to 3*1 + 3*2 + 1*3 = 12, over 7 pairs.
        topo = hypercube(3)
        assert properties.average_distance(topo) == pytest.approx(12 / 7)

    def test_average_distance_torus(self):
        topo = torus_3d(3)
        assert properties.average_distance(topo) == pytest.approx(54 / 26)


class TestSpectralAndExpansion:
    def test_spectral_gap_complete_graph(self):
        # K_n has eigenvalues n-1 and -1: gap = n.
        topo = complete(6)
        assert properties.spectral_gap(topo) == pytest.approx(6.0, abs=1e-9)

    def test_spectral_gap_positive_for_connected(self):
        assert properties.spectral_gap(generalized_kautz(4, 20)) > 0

    def test_algebraic_connectivity_ring_small(self):
        topo = ring(8)
        # Symmetrized unidirectional ring = cycle with weight 1/2 edges.
        expected = (1 - math.cos(2 * math.pi / 8))  # 2*(w=1/2)*(1-cos)
        assert properties.algebraic_connectivity(topo) == pytest.approx(expected, rel=1e-6)

    def test_expander_has_larger_gap_than_torus(self):
        gk = generalized_kautz(4, 16)
        t = torus_2d(4)
        assert properties.spectral_gap(gk) > properties.spectral_gap(t)

    def test_edge_expansion_singleton_bound(self):
        topo = hypercube(3)
        # h(G) <= boundary({v}) / 1 = degree.
        assert properties.edge_expansion_estimate(topo) <= 3.0 + 1e-9
        assert properties.edge_expansion_estimate(topo) > 0


class TestBisection:
    def test_bisection_hypercube(self):
        # Bisection bandwidth of the d-cube is N/2 bidirectional links.
        topo = hypercube(3)
        est = properties.bisection_bandwidth_estimate(topo, trials=200, seed=0)
        assert est <= 4.0 + 1e-9
        assert est > 0

    def test_bisection_complete(self):
        topo = complete(4)
        est = properties.bisection_bandwidth_estimate(topo)
        # Balanced 2|2 cut crosses 2*2 node pairs = 8 directed edges -> 4 per direction.
        assert est == pytest.approx(4.0, abs=1e-9)


class TestFlowBound:
    def test_flow_upper_bound_ring(self):
        topo = ring(5)
        # total cap 5, total dist 50.
        assert properties.all_to_all_upper_bound_from_distance(topo) == pytest.approx(0.1)

    def test_flow_upper_bound_matches_mcf_on_hypercube(self):
        from repro.core import solve_decomposed_mcf

        topo = hypercube(3)
        bound = properties.all_to_all_upper_bound_from_distance(topo)
        achieved = solve_decomposed_mcf(topo).concurrent_flow
        assert achieved <= bound + 1e-6
        assert achieved == pytest.approx(bound, rel=1e-4)  # hypercube is distance-optimal

    def test_summary_keys(self):
        s = properties.summary(hypercube(2))
        for key in ("num_nodes", "diameter", "average_distance", "spectral_gap",
                    "bisection_estimate", "flow_upper_bound"):
            assert key in s
        assert s["num_nodes"] == 4
