"""Tests for schedule chunking (fractional flows/weights -> concrete chunks)."""

import pytest

from repro.core import solve_path_mcf, solve_timestepped_mcf
from repro.paths import edge_disjoint_path_sets
from repro.schedule import (
    chunk_path_schedule,
    chunk_timestepped_flow,
    quantize_weights,
    validate_link_schedule,
    validate_routed_schedule,
)
from repro.topology import ring, torus_2d


class TestQuantizeWeights:
    def test_simple_halves(self):
        counts, denom = quantize_weights([0.5, 0.5])
        assert counts == [denom // 2, denom // 2]
        assert sum(counts) == denom

    def test_unequal_weights(self):
        counts, denom = quantize_weights([2.0, 1.0])
        assert sum(counts) == denom
        assert counts[0] == 2 * counts[1]

    def test_counts_proportional_within_tolerance(self):
        weights = [0.37, 0.41, 0.22]
        counts, denom = quantize_weights(weights, max_denominator=64)
        total = sum(weights)
        for w, c in zip(weights, counts):
            assert c / denom == pytest.approx(w / total, abs=1.0 / 32)

    def test_every_positive_weight_represented(self):
        counts, denom = quantize_weights([0.999, 0.001], max_denominator=16)
        assert all(c >= 1 for c in counts)
        assert sum(counts) == denom

    def test_single_weight(self):
        counts, denom = quantize_weights([0.3])
        assert counts == [denom]

    def test_zero_sum_rejected(self):
        with pytest.raises(ValueError):
            quantize_weights([0.0, 0.0])


class TestChunkPathSchedule:
    def test_covers_every_shard_exactly(self, genkautz_extp):
        routed = chunk_path_schedule(genkautz_extp)
        validate_routed_schedule(routed)

    def test_chunk_counts_follow_weights(self, bipartite44):
        schedule = solve_path_mcf(bipartite44, edge_disjoint_path_sets(bipartite44))
        routed = chunk_path_schedule(schedule, max_denominator=16)
        norm = schedule.normalized()
        for (s, d), plist in norm.paths.items():
            assignments = routed.routes_for(s, d)
            total_fraction = sum(a.chunk.fraction for a in assignments)
            assert total_fraction == pytest.approx(1.0, abs=1e-9)
            # Per-route fractions approximate the normalized weights.
            by_route = {}
            for a in assignments:
                by_route[a.route] = by_route.get(a.route, 0.0) + a.chunk.fraction
            for p in plist:
                if p.weight > 1e-6:
                    assert by_route.get(tuple(p.nodes), 0.0) == pytest.approx(
                        p.weight, abs=0.13)

    def test_layers_applied(self, genkautz_extp):
        routes = {tuple(p.nodes): 2 for plist in genkautz_extp.paths.values() for p in plist}
        routed = chunk_path_schedule(genkautz_extp, layers=routes)
        assert all(a.layer == 2 for a in routed.assignments)

    def test_chunks_use_existing_links(self, genkautz_routed_schedule):
        genkautz_routed_schedule.validate_links()


class TestChunkTimesteppedFlow:
    def test_hypercube_schedule_valid(self, cube3_link_schedule):
        validate_link_schedule(cube3_link_schedule)
        assert cube3_link_schedule.num_steps == 4

    def test_every_chunk_send_matches_flow_volume(self, cube3_tsmcf, cube3_link_schedule):
        # Total bytes moved by the schedule equal the total flow volume.
        total_flow = sum(sum(per.values()) for per in cube3_tsmcf.flows.values())
        total_sched = sum(op.chunk.fraction for op in cube3_link_schedule.operations)
        assert total_sched == pytest.approx(total_flow, rel=1e-5)

    def test_ring_timestepped_chunking(self):
        topo = ring(4)
        flow = solve_timestepped_mcf(topo, num_steps=4)
        schedule = chunk_timestepped_flow(flow)
        validate_link_schedule(schedule)

    def test_torus_timestepped_chunking(self):
        topo = torus_2d(3)
        flow = solve_timestepped_mcf(topo, num_steps=3)
        schedule = chunk_timestepped_flow(flow)
        validate_link_schedule(schedule)
        assert schedule.meta["source"] == "tsmcf"

    def test_per_step_link_volume_matches_flow(self, cube3_tsmcf, cube3_link_schedule):
        for t in range(1, cube3_tsmcf.num_steps + 1):
            flow_load = cube3_tsmcf.link_load(t)
            sched_load = cube3_link_schedule.link_bytes(t, shard_bytes=1.0)
            for e, v in flow_load.items():
                assert sched_load.get(e, 0.0) == pytest.approx(v, abs=1e-6)
