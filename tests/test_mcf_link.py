"""Tests for the link-based MCF formulation (§3.1.1)."""

import pytest

from repro.core import solve_link_mcf
from repro.core.flow import conservation_violation, max_link_utilization
from repro.topology import Topology, ring
from repro.topology.properties import all_to_all_upper_bound_from_distance


class TestOptimalValues:
    """Closed-form optima on analytically tractable topologies."""

    def test_unidirectional_ring(self, ring5):
        # Sum of distances per source = N(N-1)/2 = 10; one outgoing link -> F = 1/10.
        assert solve_link_mcf(ring5).concurrent_flow == pytest.approx(0.1, rel=1e-6)

    def test_complete_graph(self, complete4):
        assert solve_link_mcf(complete4).concurrent_flow == pytest.approx(1.0, rel=1e-6)

    def test_hypercube(self, cube3):
        # d / sum-of-distances = 3 / 12 = 1/4 and the hypercube achieves it.
        assert solve_link_mcf(cube3).concurrent_flow == pytest.approx(0.25, rel=1e-6)

    def test_complete_bipartite(self, bipartite44):
        # Distances: 4 neighbours at 1, 3 same-side nodes at 2 -> bound 4/10.
        assert solve_link_mcf(bipartite44).concurrent_flow == pytest.approx(0.4, rel=1e-6)

    def test_capacity_scaling(self):
        base = solve_link_mcf(ring(4)).concurrent_flow
        scaled = solve_link_mcf(ring(4, cap=2.0)).concurrent_flow
        assert scaled == pytest.approx(2 * base, rel=1e-6)

    def test_never_exceeds_distance_bound(self, genkautz_3_10):
        sol = solve_link_mcf(genkautz_3_10)
        assert sol.concurrent_flow <= all_to_all_upper_bound_from_distance(genkautz_3_10) + 1e-9


class TestSolutionStructure:
    def test_capacity_respected(self, cube3_link_mcf):
        assert max_link_utilization(cube3_link_mcf) <= 1.0 + 1e-6

    def test_every_commodity_delivers_f(self, cube3_link_mcf):
        f = cube3_link_mcf.concurrent_flow
        for s, d in cube3_link_mcf.topology.commodities():
            assert cube3_link_mcf.delivered(s, d) >= f - 1e-6

    def test_conservation_after_repair(self, cube3_link_mcf):
        for (s, d), per in cube3_link_mcf.flows.items():
            assert conservation_violation(per, s, d) < 1e-7

    def test_unrepaired_solution_still_optimal(self, cube3):
        raw = solve_link_mcf(cube3, repair=False)
        assert raw.concurrent_flow == pytest.approx(0.25, rel=1e-6)
        assert raw.meta["method"] == "mcf-link"
        assert raw.meta["num_variables"] > 0

    def test_flows_only_on_existing_edges(self, cube3_link_mcf):
        topo = cube3_link_mcf.topology
        for per in cube3_link_mcf.flows.values():
            for (u, v) in per:
                assert topo.has_edge(u, v)

    def test_destination_never_reemits_own_commodity(self, cube3_link_mcf):
        for (s, d), per in cube3_link_mcf.flows.items():
            for (u, v), val in per.items():
                assert not (u == d and val > 1e-9)


class TestCustomDemand:
    def test_skewed_demand_reduces_f(self, complete4):
        uniform = solve_link_mcf(complete4).concurrent_flow
        demand = {c: 1.0 for c in complete4.commodities()}
        demand[(0, 1)] = 3.0     # one commodity needs 3x the bandwidth
        skewed = solve_link_mcf(complete4, demand=demand).concurrent_flow
        assert skewed < uniform
        # Node 0 must egress 3F + F + F = 5F over 3 unit links -> F = 3/5.
        assert skewed == pytest.approx(0.6, rel=1e-5)

    def test_zero_demand_commodity_is_free(self, complete4):
        demand = {c: 1.0 for c in complete4.commodities()}
        demand[(0, 1)] = 0.0
        sol = solve_link_mcf(complete4, demand=demand)
        assert sol.concurrent_flow >= 1.0 - 1e-6


class TestErrors:
    def test_disconnected_topology_rejected(self):
        topo = Topology.from_edges(4, [(0, 1), (1, 0), (2, 3), (3, 2)])
        with pytest.raises(ValueError, match="strongly connected"):
            solve_link_mcf(topo)
