"""Tests for disjoint paths, SSSP, EwSP, DOR and widest-path utilities."""

import pytest

from repro.core import solve_decomposed_mcf
from repro.paths import (
    dor_route,
    dor_routes,
    dor_schedule,
    edge_disjoint_path_sets,
    edge_disjoint_paths,
    ewsp_schedule,
    path_bottleneck,
    sssp_routes,
    sssp_schedule,
    widest_path,
    widest_path_in_topology,
)
from repro.topology import edge_punctured_torus, mesh, torus


class TestDisjointPaths:
    def test_hypercube_has_degree_many_disjoint_paths(self, cube3):
        paths = edge_disjoint_paths(cube3, 0, 7)
        assert len(paths) == 3
        used = set()
        for p in paths:
            for e in zip(p[:-1], p[1:]):
                assert e not in used
                used.add(e)

    def test_max_paths_cap(self, cube3):
        assert len(edge_disjoint_paths(cube3, 0, 7, max_paths=2)) == 2

    def test_greedy_prefers_short_paths(self, bipartite44):
        paths = edge_disjoint_paths(bipartite44, 0, 4)
        assert min(len(p) for p in paths) == 2      # the direct link comes first
        assert paths[0] == [0, 4]

    def test_flow_based_variant(self, cube3):
        paths = edge_disjoint_paths(cube3, 0, 7, prefer_short=False)
        assert len(paths) == 3

    def test_ring_single_path(self, ring5):
        assert edge_disjoint_paths(ring5, 0, 3) == [[0, 1, 2, 3]]

    def test_path_sets_all_commodities(self, cube3):
        sets = edge_disjoint_path_sets(cube3)
        assert len(sets) == 56
        for (s, d), paths in sets.items():
            assert all(p[0] == s and p[-1] == d for p in paths)

    def test_same_source_destination_rejected(self, cube3):
        with pytest.raises(ValueError):
            edge_disjoint_paths(cube3, 2, 2)


class TestSSSP:
    def test_routes_cover_all_commodities(self, cube3):
        routes = sssp_routes(cube3)
        assert len(routes) == 56
        for (s, d), p in routes.items():
            assert p[0] == s and p[-1] == d

    def test_congestion_awareness_spreads_load(self, bipartite44):
        schedule = sssp_schedule(bipartite44)
        loads = schedule.link_loads().values()
        naive_max = max(loads)
        # SSSP must do no worse than 2x the optimal max load on K4,4 (optimal 2.5).
        assert naive_max <= 2 * 2.5 + 1e-9

    def test_sssp_at_most_moderately_worse_than_mcf(self, genkautz_4_16):
        optimal_time = 1.0 / solve_decomposed_mcf(genkautz_4_16).concurrent_flow
        sssp_time = sssp_schedule(genkautz_4_16).all_to_all_time()
        assert optimal_time <= sssp_time <= 2.5 * optimal_time

    def test_order_seed_changes_routes(self, cube3):
        a = sssp_routes(cube3, order_seed=None)
        b = sssp_routes(cube3, order_seed=99)
        assert a != b or a == b  # both valid; just ensure no exception and same keys
        assert set(a) == set(b)

    def test_deterministic_without_seed(self, cube3):
        assert sssp_routes(cube3) == sssp_routes(cube3)


class TestEwSP:
    def test_ewsp_weights_sum_to_one(self, cube3):
        schedule = ewsp_schedule(cube3)
        for c in cube3.commodities():
            assert schedule.delivered(*c) == pytest.approx(1.0, abs=1e-9)

    def test_ewsp_optimal_on_symmetric_topologies(self, cube3):
        # On the hypercube, equal splitting over shortest paths is optimal.
        schedule = ewsp_schedule(cube3)
        assert schedule.all_to_all_time() == pytest.approx(4.0, rel=1e-6)

    def test_ewsp_suboptimal_on_expander(self, genkautz_4_16):
        optimal_time = 1.0 / solve_decomposed_mcf(genkautz_4_16).concurrent_flow
        ewsp_time = ewsp_schedule(genkautz_4_16).all_to_all_time()
        assert ewsp_time > optimal_time * 1.05   # strictly worse (Fig. 8 behaviour)

    def test_limit_per_pair(self, cube3):
        schedule = ewsp_schedule(cube3, limit_per_pair=1)
        for plist in schedule.paths.values():
            assert len(plist) == 1


class TestDOR:
    def test_dor_route_dimension_order(self):
        topo = torus([3, 3])
        route = dor_route(topo, 0, 4)      # (0,0) -> (1,1): fix x then y
        assert route == [0, 3, 4]

    def test_dor_wraps_around_shorter_side(self):
        topo = torus([4, 4])
        route = dor_route(topo, 0, 12)     # (0,0) -> (3,0): wrap -1 in x
        assert route == [0, 12]

    def test_dor_on_mesh_no_wrap(self):
        topo = mesh([3, 3])
        route = dor_route(topo, 0, 8)
        assert route == [0, 3, 6, 7, 8]

    def test_dor_routes_complete(self, torus33):
        routes = dor_routes(torus33)
        assert len(routes) == 9 * 8

    def test_dor_optimal_on_torus(self, torus33):
        optimal_time = 1.0 / solve_decomposed_mcf(torus33).concurrent_flow
        assert dor_schedule(torus33).all_to_all_time() == pytest.approx(optimal_time, rel=1e-6)

    def test_dor_rejects_non_torus(self, cube3):
        with pytest.raises(ValueError):
            dor_route(cube3, 0, 1)

    def test_dor_rejects_punctured_torus(self):
        topo = edge_punctured_torus([3, 3], num_removed=2, seed=0)
        with pytest.raises(ValueError):
            dor_routes(topo)


class TestWidestPath:
    def test_picks_max_bottleneck(self):
        caps = {(0, 1): 5.0, (1, 3): 5.0, (0, 2): 10.0, (2, 3): 2.0}
        path, width = widest_path(caps, 0, 3)
        assert path == [0, 1, 3]
        assert width == 5.0

    def test_no_path_returns_none(self):
        assert widest_path({(0, 1): 1.0}, 1, 0) is None

    def test_in_topology(self, cube3):
        path, width = widest_path_in_topology(cube3, 0, 7)
        assert path[0] == 0 and path[-1] == 7
        assert width == 1.0

    def test_path_bottleneck(self):
        caps = {(0, 1): 3.0, (1, 2): 1.5}
        assert path_bottleneck(caps, [0, 1, 2]) == 1.5
        assert path_bottleneck(caps, [0]) == float("inf")
