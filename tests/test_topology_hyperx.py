"""Tests for HyperX / flattened butterfly generators."""

import pytest

from repro.core import solve_decomposed_mcf
from repro.topology import flattened_butterfly, hyperx, torus_2d
from repro.topology.properties import all_to_all_upper_bound_from_distance


class TestHyperX:
    def test_basic_shape(self):
        topo = hyperx([3, 3])
        assert topo.num_nodes == 9
        assert topo.degree() == 4          # (3-1) + (3-1)
        assert topo.diameter() == 2
        assert topo.is_bidirectional()
        assert topo.is_strongly_connected()

    def test_asymmetric_dimensions(self):
        topo = hyperx([2, 4])
        assert topo.num_nodes == 8
        assert topo.degree() == 1 + 3
        assert topo.diameter() == 2

    def test_edges_differ_in_exactly_one_coordinate(self):
        from repro.topology import coordinate_of

        dims = (3, 4)
        topo = hyperx(dims)
        for u, v in topo.edges:
            cu, cv = coordinate_of(u, dims), coordinate_of(v, dims)
            assert sum(a != b for a, b in zip(cu, cv)) == 1

    def test_one_dimension_is_complete_graph(self):
        topo = hyperx([5])
        assert topo.degree() == 4
        assert topo.diameter() == 1

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            hyperx([1, 3])
        with pytest.raises(ValueError):
            hyperx([])

    def test_lower_diameter_than_torus_of_same_size(self):
        # HyperX trades degree for diameter relative to the torus.
        assert hyperx([4, 4]).diameter() < torus_2d(4).diameter()

    def test_mcf_achieves_distance_bound(self):
        # HyperX is distance-transitive enough for the MCF to meet its bound.
        topo = hyperx([3, 3])
        bound = all_to_all_upper_bound_from_distance(topo)
        value = solve_decomposed_mcf(topo).concurrent_flow
        assert value == pytest.approx(bound, rel=1e-4)


class TestFlattenedButterfly:
    def test_alias_of_uniform_hyperx(self):
        fb = flattened_butterfly(radix=3, dimensions=2)
        hx = hyperx([3, 3])
        assert fb.num_nodes == hx.num_nodes
        assert set(fb.edges) == set(hx.edges)
        assert fb.metadata["family"] == "flattened_butterfly"

    def test_three_dimensional(self):
        fb = flattened_butterfly(radix=2, dimensions=3)
        assert fb.num_nodes == 8
        assert fb.degree() == 3            # one neighbour per dimension at radix 2
        assert fb.is_strongly_connected()

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            flattened_butterfly(radix=1, dimensions=2)
        with pytest.raises(ValueError):
            flattened_butterfly(radix=3, dimensions=0)
