"""Tests for the block-based LP construction API and array-backed solutions.

Covers the four satellite guarantees of the block layer:

* block and legacy keyed builds of the same LP produce identical
  ``to_arrays`` output (matrices, rhs, bounds, objective);
* vacuous block constraints follow the keyed API's drop/raise semantics;
* array-backed ``LPSolution.value`` / ``.values`` match the old dict path;
* array-backed solutions round-trip through the engine's solution cache
  (memory and disk tiers).
"""

import numpy as np
import pytest

from repro.core.solver import LPBuilder, LPSolution
from repro.engine import Engine, MCFProblem, SolutionCache
from repro.topology import hypercube


def _legacy_build():
    """3-variable LP via the keyed API."""
    lp = LPBuilder()
    lp.add_variable("x0", lb=0.0, ub=2.0, objective=1.0)
    lp.add_variable("x1", lb=0.5, objective=2.0)
    lp.add_variable("x2", lb=0.0, objective=3.0)
    lp.add_le([("x0", 1.0), ("x1", 1.0)], 4.0)
    lp.add_le([("x1", 2.0), ("x2", -1.0)], 1.0)
    lp.add_eq([("x0", 1.0), ("x2", 1.0)], 2.0)
    return lp


def _block_build():
    """The same LP via one variable block and COO batches."""
    lp = LPBuilder()
    x = lp.add_variable_block("x", 3, lb=[0.0, 0.5, 0.0],
                              ub=[2.0, np.inf, np.inf],
                              objective=[1.0, 2.0, 3.0])
    lp.add_le_block(rows=[0, 0, 1, 1], cols=[x[0], x[1], x[1], x[2]],
                    vals=[1.0, 1.0, 2.0, -1.0], rhs=[4.0, 1.0])
    lp.add_eq_block(rows=[0, 0], cols=[x[0], x[2]], vals=[1.0, 1.0], rhs=[2.0])
    return lp


def _as_comparable(arrays):
    c, a_ub, b_ub, a_eq, b_eq, bounds = arrays
    out = [np.asarray(c), np.asarray(bounds)]
    for a, b in ((a_ub, b_ub), (a_eq, b_eq)):
        if a is None:
            out.extend([None, None, None, None])
        else:
            coo = a.tocoo()
            out.extend([coo.row, coo.col, coo.data, np.asarray(b)])
    return out


class TestBlockLegacyParity:
    def test_identical_to_arrays_output(self):
        for got, want in zip(_as_comparable(_block_build().to_arrays()),
                             _as_comparable(_legacy_build().to_arrays())):
            if want is None:
                assert got is None
            else:
                np.testing.assert_array_equal(got, want)

    def test_identical_optimum(self):
        a = _legacy_build().solve(maximize=True)
        b = _block_build().solve(maximize=True)
        assert b.objective == pytest.approx(a.objective)

    def test_mixed_build_matches_pure_builds(self):
        # Keyed variable first, then a block, with keyed and block
        # constraints interleaved — one shared column/row space.
        lp = LPBuilder()
        x0 = lp.add_variable("x0", lb=0.0, ub=2.0, objective=1.0)
        x = lp.add_variable_block("rest", 2, lb=[0.5, 0.0],
                                  objective=[2.0, 3.0])
        lp.add_le_block(rows=[0, 0], cols=[x0, x[0]], vals=[1.0, 1.0],
                        rhs=[4.0])
        lp.add_le_block(rows=[0, 0], cols=[x[0], x[1]], vals=[2.0, -1.0],
                        rhs=[1.0])
        lp.add_eq_block(rows=[0, 0], cols=[x0, x[1]], vals=[1.0, 1.0],
                        rhs=[2.0])
        for got, want in zip(_as_comparable(lp.to_arrays()),
                             _as_comparable(_legacy_build().to_arrays())):
            if want is None:
                assert got is None
            else:
                np.testing.assert_array_equal(got, want)

    def test_duplicate_coo_entries_summed_deterministically(self):
        lp = LPBuilder()
        x = lp.add_variable_block("x", 2)
        lp.add_le_block(rows=[0, 0, 0], cols=[x[0], x[0], x[1]],
                        vals=[1.0, 2.0, 1.0], rhs=[5.0])
        _, a_ub, b_ub, _, _, _ = lp.to_arrays()
        coo = a_ub.tocoo()
        np.testing.assert_array_equal(coo.col, [0, 1])
        np.testing.assert_array_equal(coo.data, [3.0, 1.0])
        assert b_ub[0] == 5.0


class TestVacuousBlockConstraints:
    def test_empty_rows_dropped(self):
        lp = LPBuilder()
        x = lp.add_variable_block("x", 2, objective=1.0)
        # Middle row has only a zero coefficient -> vacuous, dropped.
        lp.add_le_block(rows=[0, 1, 2], cols=[x[0], x[1], x[1]],
                        vals=[1.0, 0.0, 1.0], rhs=[1.0, 9.0, 2.0])
        assert lp.num_constraints == 2
        sol = lp.solve(maximize=True)
        assert sol.objective == pytest.approx(3.0)

    def test_entirely_empty_batch_is_a_no_op(self):
        lp = LPBuilder()
        lp.add_variable_block("x", 2, ub=1.0, objective=1.0)
        lp.add_le_block(rows=[], cols=[], vals=[], rhs=[0.0, 5.0])
        assert lp.num_constraints == 0
        assert lp.solve(maximize=True).objective == pytest.approx(2.0)

    def test_infeasible_empty_le_row_raises(self):
        lp = LPBuilder()
        x = lp.add_variable_block("x", 1)
        with pytest.raises(ValueError):
            lp.add_le_block(rows=[0], cols=[x[0]], vals=[0.0], rhs=[-1.0])

    def test_infeasible_empty_eq_row_raises(self):
        lp = LPBuilder()
        x = lp.add_variable_block("x", 1)
        with pytest.raises(ValueError):
            lp.add_eq_block(rows=[0], cols=[x[0]], vals=[0.0], rhs=[3.0])

    def test_out_of_range_indices_rejected(self):
        lp = LPBuilder()
        x = lp.add_variable_block("x", 2)
        with pytest.raises(ValueError):
            lp.add_le_block(rows=[5], cols=[x[0]], vals=[1.0], rhs=[1.0])
        with pytest.raises(ValueError):
            lp.add_le_block(rows=[0], cols=[99], vals=[1.0], rhs=[1.0])

    def test_duplicate_block_name_rejected(self):
        lp = LPBuilder()
        lp.add_variable_block("x", 2)
        with pytest.raises(ValueError):
            lp.add_variable_block("x", 3)


class TestArrayBackedSolution:
    def test_value_parity_with_dict_path(self):
        lp = _legacy_build()
        sol = lp.solve(maximize=True)
        # Lazy per-key access and the materialized dict agree.
        for key in ("x0", "x1", "x2"):
            assert sol.value(key) == pytest.approx(sol.values[key])
        assert sol.value("missing", default=-3.0) == -3.0
        assert set(sol.values) == {"x0", "x1", "x2"}

    def test_block_view_shape_and_values(self):
        lp = LPBuilder()
        x = lp.add_variable_block("x", (2, 2), ub=[[1.0, 2.0], [3.0, 4.0]],
                                  objective=1.0)
        assert x.shape == (2, 2)
        sol = lp.solve(maximize=True)
        np.testing.assert_allclose(sol.block("x"), [[1.0, 2.0], [3.0, 4.0]])
        with pytest.raises(KeyError):
            sol.block("nope")

    def test_mixed_solution_keyed_and_block_access(self):
        lp = LPBuilder()
        lp.add_variable("y", lb=0.0, ub=5.0, objective=1.0)
        lp.add_variable_block("x", 2, ub=2.0, objective=1.0)
        sol = lp.solve(maximize=True)
        assert sol.value("y") == pytest.approx(5.0)
        np.testing.assert_allclose(sol.block("x"), [2.0, 2.0])

    def test_portable_sparsifies_blocks(self):
        lp = LPBuilder()
        x = lp.add_variable_block("x", 4, ub=[0.0, 3.0, 0.0, 1.0],
                                  objective=1.0)
        sol = lp.solve(maximize=True)
        portable = sol.portable(tol=1e-9)
        assert portable.raw is None
        kind, shape, idx, vals = portable._blocks["x"]
        assert kind == "sparse" and shape == (4,)
        np.testing.assert_array_equal(idx, [1, 3])
        np.testing.assert_allclose(portable.block("x"), [0.0, 3.0, 0.0, 1.0])


class TestCacheRoundTrip:
    def test_memory_tier_round_trip_of_blocks(self):
        engine = Engine()
        problem = MCFProblem("mcf-link", hypercube(3), maximize=True)
        fresh = engine.solve(problem)
        cached = engine.solve(problem)
        assert cached.info["cache"] == "hit"
        assert cached.objective == fresh.objective
        from repro.constants import FLOW_TOL

        f_fresh = np.asarray(fresh.block("f"))
        f_cached = np.asarray(cached.block("f"))
        assert f_fresh.shape == f_cached.shape
        significant = np.abs(f_fresh) > FLOW_TOL
        np.testing.assert_array_equal(f_cached[significant], f_fresh[significant])
        assert np.all(np.abs(f_cached[~significant]) <= FLOW_TOL)
        assert cached.value("F") == pytest.approx(fresh.value("F"))

    def test_disk_tier_round_trip_of_blocks(self, tmp_path):
        problem = MCFProblem("mcf-link", hypercube(3), maximize=True)
        writer = Engine(cache=SolutionCache(cache_dir=str(tmp_path)))
        fresh = writer.solve(problem)
        reader = Engine(cache=SolutionCache(cache_dir=str(tmp_path)))
        restored = reader.solve(problem)
        assert restored.info["cache"] == "hit"
        assert reader.cache.disk_hits == 1
        from repro.constants import FLOW_TOL

        f_fresh = np.asarray(fresh.block("f"))
        f_restored = np.asarray(restored.block("f"))
        significant = np.abs(f_fresh) > FLOW_TOL
        np.testing.assert_array_equal(f_restored[significant],
                                      f_fresh[significant])
        assert restored.value("F") == pytest.approx(fresh.value("F"))

    def test_cached_solution_extraction_matches_fresh(self):
        # End to end: a cache-served solve yields the same FlowSolution.
        from repro.core import solve_link_mcf

        topo = hypercube(3)
        engine = Engine()
        import repro.engine.core as engine_core

        prev = engine_core._engine
        engine_core._engine = engine
        try:
            fresh = solve_link_mcf(topo)
            again = solve_link_mcf(topo)
        finally:
            engine_core._engine = prev
        assert again.meta["engine"]["cache"] == "hit"
        assert again.concurrent_flow == pytest.approx(fresh.concurrent_flow)
        assert again.flows == fresh.flows

    def test_eviction_still_accepts_plain_solutions(self):
        cache = SolutionCache(max_entries=2)
        for i in range(5):
            cache.put(f"key-{i}", LPSolution(objective=float(i), values={}))
        assert cache.size == 2
