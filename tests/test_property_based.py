"""Property-based tests (hypothesis) for core data structures and invariants.

These exercise randomized instances of the primitives that the rest of the
system leans on: interval chunking, flow decomposition, widest paths, LASH
layering, quantization, and the MCF optimality bound on random topologies.
"""

import math

import networkx as nx
import pytest
from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

from repro.core.flow import flow_to_paths
from repro.paths.widest import path_bottleneck, widest_path
from repro.routing import lash_sequential_assign, verify_layers
from repro.schedule.chunking import quantize_weights
from repro.topology import generalized_kautz, random_regular
from repro.topology.properties import all_to_all_upper_bound_from_distance

# Keep hypothesis deadlines generous: some examples trigger LP solves.
COMMON_SETTINGS = dict(deadline=None, suppress_health_check=[HealthCheck.too_slow])


# --------------------------------------------------------------------------- #
# Chunk quantization
# --------------------------------------------------------------------------- #
@given(weights=st.lists(st.floats(min_value=1e-3, max_value=100.0), min_size=1, max_size=8))
@settings(max_examples=200, **COMMON_SETTINGS)
def test_quantize_weights_always_partitions_the_shard(weights):
    counts, denom = quantize_weights(weights)
    assert sum(counts) == denom
    assert all(c >= 1 for c in counts)
    total = sum(weights)
    # Each tiny weight forced up to one base chunk can shift the others by at
    # most 1/max_denominator, hence the len(weights)-dependent slack.
    tolerance = 1.0 / 16 + len(weights) / 64.0 + 1e-9
    for w, c in zip(weights, counts):
        assert abs(c / denom - w / total) <= tolerance


# --------------------------------------------------------------------------- #
# Flow decomposition
# --------------------------------------------------------------------------- #
@st.composite
def random_dag_flow(draw):
    """A random single-commodity flow on a layered DAG with exact conservation."""
    layers = draw(st.integers(min_value=1, max_value=3))
    width = draw(st.integers(min_value=1, max_value=3))
    # Node 0 = source; last node = destination; middle nodes arranged in layers.
    nodes = [0] + list(range(1, 1 + layers * width)) + [1 + layers * width]
    dst = nodes[-1]
    paths = []
    num_paths = draw(st.integers(min_value=1, max_value=4))
    for _ in range(num_paths):
        path = [0]
        for layer in range(layers):
            path.append(1 + layer * width + draw(st.integers(0, width - 1)))
        path.append(dst)
        weight = draw(st.floats(min_value=0.01, max_value=1.0))
        paths.append((path, weight))
    flow = {}
    for path, weight in paths:
        for e in zip(path[:-1], path[1:]):
            flow[e] = flow.get(e, 0.0) + weight
    total = sum(w for _, w in paths)
    return flow, dst, total


@given(data=random_dag_flow())
@settings(max_examples=150, **COMMON_SETTINGS)
def test_flow_to_paths_recovers_total_flow(data):
    flow, dst, total = data
    paths = flow_to_paths(flow, 0, dst)
    recovered = sum(p.weight for p in paths)
    assert recovered == pytest.approx(total, rel=1e-6)
    # Every extracted path is a genuine source->destination path over flow edges.
    for p in paths:
        assert p.source == 0 and p.destination == dst
        for e in p.edges:
            assert e in flow
    # Rebuilding link flows from the paths never exceeds the original flow.
    rebuilt = {}
    for p in paths:
        for e in p.edges:
            rebuilt[e] = rebuilt.get(e, 0.0) + p.weight
    for e, v in rebuilt.items():
        assert v <= flow[e] + 1e-6


# --------------------------------------------------------------------------- #
# Widest path
# --------------------------------------------------------------------------- #
@given(seed=st.integers(min_value=0, max_value=10_000),
       n=st.integers(min_value=4, max_value=12))
@settings(max_examples=100, **COMMON_SETTINGS)
def test_widest_path_is_optimal_bottleneck(seed, n):
    import random

    rng = random.Random(seed)
    g = nx.gnp_random_graph(n, 0.5, seed=seed, directed=True)
    assume(g.number_of_edges() > 0)
    caps = {(u, v): rng.uniform(0.1, 10.0) for u, v in g.edges()}
    source, dest = 0, n - 1
    result = widest_path(caps, source, dest)
    if result is None:
        assume(not nx.has_path(g, source, dest))
        return
    path, width = result
    assert path[0] == source and path[-1] == dest
    assert width == pytest.approx(path_bottleneck(caps, path))
    # Optimality via threshold reachability: the destination must be
    # unreachable using only edges strictly wider than the returned width
    # (otherwise a wider path would exist), and reachable at the width itself.
    def reachable(threshold: float) -> bool:
        sub = nx.DiGraph()
        sub.add_nodes_from(g.nodes())
        sub.add_edges_from(e for e, c in caps.items() if c >= threshold)
        return nx.has_path(sub, source, dest)

    assert reachable(width)
    wider = sorted({c for c in caps.values() if c > width + 1e-12})
    if wider:
        assert not reachable(wider[0])


# --------------------------------------------------------------------------- #
# LASH layering
# --------------------------------------------------------------------------- #
@given(seed=st.integers(min_value=0, max_value=5_000))
@settings(max_examples=50, **COMMON_SETTINGS)
def test_lash_sequential_layers_always_acyclic(seed):
    import random

    rng = random.Random(seed)
    n = rng.randint(5, 10)
    # random_regular retries until the sampled graph is connected.
    topo = random_regular(3, n if (3 * n) % 2 == 0 else n + 1, seed=seed)
    routes = []
    nodes = topo.nodes
    for _ in range(30):
        s, d = rng.sample(nodes, 2)
        routes.append(tuple(nx.shortest_path(topo.graph, s, d)))
    assignment = lash_sequential_assign(routes)
    assert verify_layers(assignment)
    assert set(assignment.layer_of.keys()) == set(routes)
    assert assignment.num_layers <= 6


# --------------------------------------------------------------------------- #
# Topology generators + MCF bound
# --------------------------------------------------------------------------- #
@given(n=st.integers(min_value=5, max_value=24), degree=st.integers(min_value=2, max_value=4))
@settings(max_examples=40, **COMMON_SETTINGS)
def test_generalized_kautz_always_connected_and_bounded_degree(n, degree):
    topo = generalized_kautz(degree, n)
    assert topo.num_nodes == n
    assert topo.is_strongly_connected()
    assert all(topo.out_degree(u) <= degree for u in topo.nodes)
    assert topo.diameter() <= math.ceil(math.log(max(n, 2), degree)) + 1


@given(seed=st.integers(min_value=0, max_value=1_000))
@settings(max_examples=15, **COMMON_SETTINGS)
def test_master_lp_never_exceeds_distance_bound(seed):
    """The MCF optimum respects the distance upper bound on random regular graphs."""
    from repro.core import solve_master_lp

    topo = random_regular(3, 8, seed=seed)
    bound = all_to_all_upper_bound_from_distance(topo)
    value = solve_master_lp(topo).concurrent_flow
    assert value <= bound + 1e-6
    assert value > 0


@given(seed=st.integers(min_value=0, max_value=1_000))
@settings(max_examples=10, **COMMON_SETTINGS)
def test_decomposed_equals_link_mcf_on_random_graphs(seed):
    """Decomposition preserves optimality (§3.1.2) on random topologies."""
    from repro.core import solve_decomposed_mcf, solve_link_mcf

    topo = random_regular(3, 8, seed=seed)
    full = solve_link_mcf(topo, repair=False).concurrent_flow
    decomposed = solve_decomposed_mcf(topo, repair=False).concurrent_flow
    assert decomposed == pytest.approx(full, rel=1e-5)
