"""Tests for deadlock detection and virtual-channel layer assignment (§5.5)."""


from repro.core import solve_mcf_extract_paths
from repro.paths import sssp_routes, ewsp_schedule
from repro.routing import (
    channel_dependency_graph,
    dfsssp_assign,
    find_dependency_cycle,
    is_deadlock_free,
    lash_assign,
    lash_sequential_assign,
    route_edges,
    verify_layers,
)
from repro.topology import torus_2d


class TestChannelDependencyGraph:
    def test_route_edges(self):
        assert route_edges([0, 1, 2]) == [(0, 1), (1, 2)]
        assert route_edges([5, 3]) == [(5, 3)]

    def test_cdg_nodes_and_arcs(self):
        cdg = channel_dependency_graph([[0, 1, 2], [1, 2, 3]])
        assert (0, 1) in cdg.nodes
        assert cdg.has_edge((0, 1), (1, 2))
        assert cdg.has_edge((1, 2), (2, 3))

    def test_acyclic_routes_deadlock_free(self):
        routes = [[0, 1, 2], [1, 2, 3], [0, 1], [2, 3]]
        assert is_deadlock_free(routes)
        assert find_dependency_cycle(routes) == []

    def test_ring_cycle_detected(self):
        # Routes that wrap all the way around a unidirectional cycle deadlock.
        routes = [[0, 1, 2], [1, 2, 0], [2, 0, 1]]
        assert not is_deadlock_free(routes)
        cycle = find_dependency_cycle(routes)
        assert len(cycle) >= 2


class TestLASH:
    def _cyclic_routes(self):
        return [[0, 1, 2], [1, 2, 0], [2, 0, 1]]

    def test_lash_splits_cycle_into_layers(self):
        assignment = lash_assign(self._cyclic_routes())
        assert assignment.num_layers >= 2
        assert verify_layers(assignment)

    def test_lash_single_layer_for_acyclic_routes(self):
        assignment = lash_assign([[0, 1, 2], [1, 2, 3], [3, 4]])
        assert assignment.num_layers == 1
        assert verify_layers(assignment)

    def test_lash_sequential_valid(self):
        assignment = lash_sequential_assign(self._cyclic_routes())
        assert verify_layers(assignment)
        assert set(assignment.layer_of) == {tuple(r) for r in self._cyclic_routes()}

    def test_lash_sequential_never_more_layers_than_first_fit_plus_one(self):
        topo = torus_2d(3)
        schedule = solve_mcf_extract_paths(topo)
        routes = [tuple(p.nodes) for plist in schedule.paths.values() for p in plist]
        seq = lash_sequential_assign(routes)
        ff = lash_assign(routes)
        assert verify_layers(seq) and verify_layers(ff)
        assert seq.num_layers <= ff.num_layers + 1

    def test_paper_claim_at_most_four_layers(self, genkautz_extp, torus33):
        """§5.5: LASH-sequential needed <= 4 layers across all route sets evaluated."""
        route_sets = []
        route_sets.append([tuple(p.nodes) for plist in genkautz_extp.paths.values()
                           for p in plist])
        sssp = sssp_routes(torus33)
        route_sets.append([tuple(p) for p in sssp.values()])
        ewsp = ewsp_schedule(torus33)
        route_sets.append([tuple(p.nodes) for plist in ewsp.paths.values() for p in plist])
        for routes in route_sets:
            assignment = lash_sequential_assign(routes)
            assert verify_layers(assignment)
            assert assignment.num_layers <= 4

    def test_duplicate_routes_assigned_once(self):
        assignment = lash_assign([[0, 1, 2], [0, 1, 2], [0, 1, 2]])
        assert len(assignment.layer_of) == 1


class TestDFSSSP:
    def test_acyclic_routes_single_layer(self):
        assignment = dfsssp_assign([[0, 1, 2], [1, 2, 3]])
        assert assignment.num_layers == 1
        assert verify_layers(assignment)

    def test_cycle_broken(self):
        assignment = dfsssp_assign([[0, 1, 2], [1, 2, 0], [2, 0, 1]])
        assert assignment.num_layers >= 2
        assert verify_layers(assignment)

    def test_on_real_schedule(self, genkautz_extp):
        routes = [tuple(p.nodes) for plist in genkautz_extp.paths.values() for p in plist]
        assignment = dfsssp_assign(routes)
        assert verify_layers(assignment)
        assert assignment.num_layers <= 8

    def test_all_routes_assigned(self):
        routes = [[0, 1, 2], [1, 2, 0], [2, 0, 1], [0, 1], [1, 2]]
        assignment = dfsssp_assign(routes)
        assert len(assignment.layer_of) == 5
