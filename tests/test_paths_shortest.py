"""Tests for shortest/bounded path enumeration (repro.paths.shortest)."""

import pytest

from repro.paths import (
    all_shortest_path_sets,
    all_shortest_paths,
    bounded_length_path_sets,
    bounded_length_paths,
    first_shortest_path_sets,
    k_shortest_paths,
    shortest_path,
)


class TestShortestPath:
    def test_shortest_path_on_ring(self, ring5):
        assert shortest_path(ring5, 0, 3) == [0, 1, 2, 3]

    def test_shortest_path_deterministic_lexicographic(self, cube3):
        # 0 -> 3 has two shortest paths (via 1 or via 2); lexicographic BFS picks via 1.
        assert shortest_path(cube3, 0, 3) == [0, 1, 3]

    def test_no_path_raises(self):
        import networkx as nx
        from repro.topology import Topology

        topo = Topology.from_edges(3, [(0, 1), (1, 0), (1, 2), (2, 1)])
        ok = shortest_path(topo, 0, 2)
        assert ok == [0, 1, 2]
        broken = Topology.from_edges(3, [(0, 1), (1, 0)])
        with pytest.raises(nx.NetworkXNoPath):
            shortest_path(broken, 0, 2)


class TestAllShortestPaths:
    def test_hypercube_pair_count(self, cube3):
        # Antipodal nodes in the 3-cube have 3! = 6 shortest paths.
        assert len(all_shortest_paths(cube3, 0, 7)) == 6

    def test_limit_respected(self, cube3):
        assert len(all_shortest_paths(cube3, 0, 7, limit=2)) == 2

    def test_path_sets_cover_all_commodities(self, cube3):
        sets = all_shortest_path_sets(cube3)
        assert len(sets) == 8 * 7
        for (s, d), paths in sets.items():
            for p in paths:
                assert p[0] == s and p[-1] == d

    def test_first_shortest_path_sets_single_path(self, cube3):
        sets = first_shortest_path_sets(cube3)
        assert all(isinstance(p, list) for p in sets.values())
        assert len(sets) == 56


class TestKShortest:
    def test_k_shortest_ordered_by_length(self, torus33):
        paths = k_shortest_paths(torus33, 0, 4, k=4)
        lengths = [len(p) for p in paths]
        assert lengths == sorted(lengths)
        assert len(paths) == 4

    def test_k_larger_than_available(self, ring5):
        # The unidirectional ring has exactly one simple path per pair.
        assert len(k_shortest_paths(ring5, 0, 2, k=5)) == 1


class TestBoundedLength:
    def test_bounded_paths_respect_cutoff(self, cube3):
        paths = bounded_length_paths(cube3, 0, 7, max_length=3)
        assert all(len(p) - 1 <= 3 for p in paths)
        assert len(paths) == 6

    def test_longer_cutoff_gives_more_paths(self, cube3):
        short = bounded_length_paths(cube3, 0, 3, max_length=2)
        long = bounded_length_paths(cube3, 0, 3, max_length=4)
        assert len(long) > len(short)

    def test_always_contains_a_path(self, ring5):
        # Cutoff below the distance still yields the fallback shortest path.
        paths = bounded_length_paths(ring5, 0, 4, max_length=2)
        assert paths == [[0, 1, 2, 3, 4]]

    def test_path_set_default_cutoff_is_diameter(self, cube3):
        sets = bounded_length_path_sets(cube3)
        for (s, d), paths in sets.items():
            assert all(len(p) - 1 <= 3 for p in paths)

    def test_limit_per_pair(self, cube3):
        sets = bounded_length_path_sets(cube3, max_length=4, limit_per_pair=3)
        assert all(len(paths) <= 3 for paths in sets.values())
