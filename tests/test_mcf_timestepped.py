"""Tests for the time-stepped MCF (tsMCF, §3.1.3)."""

import pytest

from repro.core import solve_decomposed_mcf, solve_timestepped_mcf
from repro.topology import Topology, complete, ring


class TestOptimality:
    def test_total_utilization_equals_inverse_f_on_hypercube(self, cube3, cube3_tsmcf):
        # With enough steps the time-stepped optimum matches the steady state 1/F.
        assert cube3_tsmcf.total_utilization == pytest.approx(4.0, rel=1e-4)
        assert cube3_tsmcf.equivalent_concurrent_flow() == pytest.approx(0.25, rel=1e-4)

    def test_complete_graph_single_step(self):
        flow = solve_timestepped_mcf(complete(4), num_steps=1)
        assert flow.total_utilization == pytest.approx(1.0, rel=1e-6)
        assert flow.num_steps == 1

    def test_bipartite_matches_steady_state(self, bipartite44):
        steady = solve_decomposed_mcf(bipartite44).concurrent_flow
        ts = solve_timestepped_mcf(bipartite44)
        assert ts.equivalent_concurrent_flow() == pytest.approx(steady, rel=1e-3)

    def test_more_steps_never_hurts(self):
        topo = ring(4)
        short = solve_timestepped_mcf(topo, num_steps=3)
        long = solve_timestepped_mcf(topo, num_steps=5)
        assert long.total_utilization <= short.total_utilization + 1e-6

    def test_ring_matches_steady_state(self):
        topo = ring(4)
        ts = solve_timestepped_mcf(topo, num_steps=4)
        assert ts.total_utilization == pytest.approx(6.0, rel=1e-4)  # 1/F, F=1/6


class TestStructure:
    def test_every_commodity_fully_delivered(self, cube3_tsmcf):
        for s, d in cube3_tsmcf.topology.commodities():
            assert cube3_tsmcf.delivered_fraction(s, d) == pytest.approx(1.0, abs=1e-5)

    def test_step_utilization_bounds_link_loads(self, cube3_tsmcf):
        for t in range(1, cube3_tsmcf.num_steps + 1):
            loads = cube3_tsmcf.link_load(t)
            if not loads:
                continue
            u_t = cube3_tsmcf.step_utilizations[t - 1]
            caps = cube3_tsmcf.topology.capacities()
            for e, load in loads.items():
                assert load <= u_t * caps[e] + 1e-6

    def test_causality_cumulative(self, cube3_tsmcf):
        """A node never forwards more of a shard than it has received so far."""
        topo = cube3_tsmcf.topology
        for (s, d), per in cube3_tsmcf.flows.items():
            for u in topo.nodes:
                if u in (s, d):
                    continue
                for t in range(1, cube3_tsmcf.num_steps + 1):
                    sent = sum(v for (a, b, tt), v in per.items() if a == u and tt <= t)
                    recv = sum(v for (a, b, tt), v in per.items() if b == u and tt < t)
                    assert sent <= recv + 1e-6

    def test_flows_respect_step_range(self, cube3_tsmcf):
        for per in cube3_tsmcf.flows.values():
            for (u, v, t) in per:
                assert 1 <= t <= cube3_tsmcf.num_steps
                assert cube3_tsmcf.topology.has_edge(u, v)

    def test_step_flows_accessor(self, cube3_tsmcf):
        step1 = cube3_tsmcf.step_flows(1)
        assert step1, "step 1 must carry traffic"
        total = sum(sum(per.values()) for per in step1.values())
        assert total > 0


class TestParameters:
    def test_num_steps_below_diameter_rejected(self, cube3):
        with pytest.raises(ValueError, match="diameter"):
            solve_timestepped_mcf(cube3, num_steps=2)

    def test_default_steps_is_diameter_plus_extra(self, cube3, cube3_tsmcf):
        assert cube3_tsmcf.num_steps == cube3.diameter() + 1

    def test_disconnected_rejected(self):
        topo = Topology.from_edges(4, [(0, 1), (1, 0), (2, 3), (3, 2)])
        with pytest.raises(ValueError):
            solve_timestepped_mcf(topo)

    def test_meta_populated(self, cube3_tsmcf):
        assert cube3_tsmcf.meta["method"] == "tsmcf"
        assert cube3_tsmcf.meta["diameter"] == 3
        assert cube3_tsmcf.solve_seconds > 0
