"""Tests for the Theorem 1 lower bound and the per-graph distance bound."""


import pytest

from repro.core import (
    ideal_arborescence_distance_sum,
    lower_bound_time_graph,
    lower_bound_time_regular,
    solve_decomposed_mcf,
    throughput_upper_bound,
    upper_bound_concurrent_flow,
)
from repro.topology import complete, generalized_kautz, hypercube, ring, torus_2d


class TestArborescenceSum:
    def test_full_binary_tree(self):
        # N = 1 + 2 + 4 = 7 nodes: distances 2*1 + 4*2 = 10.
        assert ideal_arborescence_distance_sum(2, 7) == 10

    def test_partial_last_level(self):
        # N = 6: root + 2 at level 1 + 3 of 4 at level 2 -> 2*1 + 3*2 = 8.
        assert ideal_arborescence_distance_sum(2, 6) == 8

    def test_degree_one_chain(self):
        # Chain of N nodes: 1 + 2 + ... + (N-1).
        assert ideal_arborescence_distance_sum(1, 5) == 10

    def test_single_node(self):
        assert ideal_arborescence_distance_sum(3, 1) == 0

    def test_invalid(self):
        with pytest.raises(ValueError):
            ideal_arborescence_distance_sum(0, 5)


class TestTheorem1:
    def test_lower_bound_complete_graph_tight(self):
        # Complete graph: d = N-1, every node at distance 1 -> bound = 1 = 1/F.
        assert lower_bound_time_regular(5, 6) == pytest.approx(1.0)
        assert solve_decomposed_mcf(complete(6)).concurrent_flow == pytest.approx(1.0, rel=1e-5)

    def test_scaling_n_log_n(self):
        # The bound grows like (N/d) * log_d N for large N.
        small = lower_bound_time_regular(4, 64)
        large = lower_bound_time_regular(4, 256)
        assert large > 3.5 * small            # ~4x from N alone, plus the log factor

    @pytest.mark.parametrize("make_topo", [
        lambda: hypercube(3),
        lambda: torus_2d(3),
        lambda: generalized_kautz(3, 10),
        lambda: ring(6),
    ])
    def test_no_topology_beats_the_regular_bound(self, make_topo):
        topo = make_topo()
        d = topo.max_degree()
        bound_time = lower_bound_time_regular(d, topo.num_nodes)
        achieved_time = 1.0 / solve_decomposed_mcf(topo).concurrent_flow
        assert achieved_time >= bound_time - 1e-6

    def test_graph_bound_at_least_regular_bound(self):
        for topo in (hypercube(3), torus_2d(4), generalized_kautz(4, 20)):
            assert lower_bound_time_graph(topo) >= \
                lower_bound_time_regular(topo.max_degree(), topo.num_nodes) - 1e-9


class TestGraphBound:
    def test_graph_bound_matches_mcf_on_hypercube(self, cube3, cube3_decomposed_mcf):
        # The hypercube achieves its distance bound exactly.
        assert 1.0 / cube3_decomposed_mcf.concurrent_flow == pytest.approx(
            lower_bound_time_graph(cube3), rel=1e-5)

    def test_upper_bound_concurrent_flow_reciprocal(self, cube3):
        assert upper_bound_concurrent_flow(cube3) == pytest.approx(
            1.0 / lower_bound_time_graph(cube3))

    def test_torus_27_bound(self, torus333):
        # Sum of distances 27*54, capacity 162 -> bound time 9 = 1/F.
        assert lower_bound_time_graph(torus333) == pytest.approx(9.0)


class TestThroughputBound:
    def test_paper_numbers_bottlenecked_torus(self):
        # (N-1) * f * b = 26 * (2/27) * 3.125 GB/s = 6.01 GB/s (§5.2).
        gbps = throughput_upper_bound(27, 2.0 / 27.0, 3.125e9)
        assert gbps == pytest.approx(6.018e9, rel=1e-3)

    def test_linear_in_bandwidth(self):
        assert throughput_upper_bound(8, 0.25, 2e9) == pytest.approx(
            2 * throughput_upper_bound(8, 0.25, 1e9))
