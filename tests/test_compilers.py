"""Tests for the XML compilers and the executing interpreter (§4)."""

import xml.etree.ElementTree as ET

import pytest

from repro.schedule import (
    compile_to_msccl_xml,
    compile_to_oneccl_xml,
    compile_to_ompi_xml,
    count_instructions,
    count_queue_pairs,
    execute_link_xml,
    execute_routed_xml,
    parse_msccl_xml,
    parse_oneccl_xml,
    parse_ompi_xml,
    scratch_buffer_bytes,
    validate_link_schedule,
    validate_routed_schedule,
)
from repro.simulator import a100_ml_fabric, cerio_hpc_fabric


class TestMSCCLCompiler:
    def test_emits_well_formed_xml(self, cube3_link_schedule):
        xml = compile_to_msccl_xml(cube3_link_schedule)
        root = ET.fromstring(xml)
        assert root.tag == "algo"
        assert int(root.get("ngpus")) == 8
        assert int(root.get("nsteps")) == cube3_link_schedule.num_steps

    def test_one_gpu_element_per_rank(self, cube3_link_schedule):
        root = ET.fromstring(compile_to_msccl_xml(cube3_link_schedule))
        assert len(root.findall("gpu")) == 8

    def test_send_and_recv_counts_match(self, cube3_link_schedule):
        xml = compile_to_msccl_xml(cube3_link_schedule)
        counts = count_instructions(xml)
        assert counts["s"] == counts["r"] == len(cube3_link_schedule.operations)

    def test_roundtrip_preserves_schedule(self, cube3, cube3_link_schedule):
        xml = compile_to_msccl_xml(cube3_link_schedule)
        parsed = parse_msccl_xml(xml, cube3)
        validate_link_schedule(parsed)
        assert parsed.num_steps == cube3_link_schedule.num_steps
        assert len(parsed.operations) == len(cube3_link_schedule.operations)
        original = {(op.src, op.dst, op.step, op.chunk.commodity, round(op.chunk.lo, 6))
                    for op in cube3_link_schedule.operations}
        roundtrip = {(op.src, op.dst, op.step, op.chunk.commodity, round(op.chunk.lo, 6))
                     for op in parsed.operations}
        assert original == roundtrip

    def test_channels_parameter(self, cube3_link_schedule):
        xml = compile_to_msccl_xml(cube3_link_schedule, num_channels=2)
        assert ET.fromstring(xml).get("nchannels") == "2"
        with pytest.raises(ValueError):
            compile_to_msccl_xml(cube3_link_schedule, num_channels=0)

    def test_parse_rejects_foreign_xml(self, cube3):
        with pytest.raises(ValueError):
            parse_msccl_xml("<schedule/>", cube3)


class TestOneCCLCompiler:
    def test_emits_well_formed_xml(self, cube3_link_schedule):
        xml = compile_to_oneccl_xml(cube3_link_schedule)
        root = ET.fromstring(xml)
        assert root.get("runtime") == "oneccl"
        assert len(root.findall("rank")) == 8

    def test_sync_per_step_per_rank(self, cube3_link_schedule):
        root = ET.fromstring(compile_to_oneccl_xml(cube3_link_schedule))
        for rank_el in root.findall("rank"):
            assert len(rank_el.findall(".//sync")) == cube3_link_schedule.num_steps

    def test_roundtrip(self, cube3, cube3_link_schedule):
        xml = compile_to_oneccl_xml(cube3_link_schedule)
        parsed = parse_oneccl_xml(xml, cube3)
        validate_link_schedule(parsed)
        assert len(parsed.operations) == len(cube3_link_schedule.operations)

    def test_scratch_buffer_sizes(self, cube3_link_schedule):
        sizes = scratch_buffer_bytes(cube3_link_schedule, shard_bytes=1024)
        assert set(sizes.keys()) == set(range(8))
        assert all(v >= 0 for v in sizes.values())
        # Some rank must forward traffic on a degree-3 topology with diameter 3.
        assert max(sizes.values()) > 0

    def test_parse_rejects_foreign_xml(self, cube3):
        with pytest.raises(ValueError):
            parse_oneccl_xml("<algo/>", cube3)


class TestOMPICompiler:
    def test_emits_routes_and_steering(self, genkautz_routed_schedule):
        xml = compile_to_ompi_xml(genkautz_routed_schedule)
        root = ET.fromstring(xml)
        assert root.get("runtime") == "ompi-ucx"
        assert len(root.find("routes").findall("route")) > 0
        assert len(root.find("steering").findall("chunk")) == len(
            genkautz_routed_schedule.assignments)

    def test_roundtrip(self, genkautz_3_10, genkautz_routed_schedule):
        xml = compile_to_ompi_xml(genkautz_routed_schedule)
        parsed = parse_ompi_xml(xml, genkautz_3_10)
        validate_routed_schedule(parsed)
        assert len(parsed.assignments) == len(genkautz_routed_schedule.assignments)

    def test_queue_pair_counts(self, genkautz_routed_schedule):
        counts = count_queue_pairs(genkautz_routed_schedule)
        n = genkautz_routed_schedule.topology.num_nodes
        # Every source opens at least one QP per destination.
        assert all(counts[r] >= n - 1 for r in range(n))

    def test_parse_rejects_foreign_xml(self, genkautz_3_10):
        with pytest.raises(ValueError):
            parse_ompi_xml("<algo/>", genkautz_3_10)


class TestExecution:
    def test_execute_msccl_xml_end_to_end(self, cube3, cube3_link_schedule):
        xml = compile_to_msccl_xml(cube3_link_schedule)
        result = execute_link_xml(xml, cube3, buffer_bytes=64 * 2 ** 20,
                                  fabric=a100_ml_fabric(), dialect="msccl")
        assert result.throughput > 0
        assert result.schedule_kind == "link"

    def test_execute_oneccl_xml_end_to_end(self, cube3, cube3_link_schedule):
        xml = compile_to_oneccl_xml(cube3_link_schedule)
        result = execute_link_xml(xml, cube3, buffer_bytes=64 * 2 ** 20,
                                  fabric=a100_ml_fabric(), dialect="oneccl")
        assert result.throughput > 0

    def test_execute_ompi_xml_end_to_end(self, genkautz_3_10, genkautz_routed_schedule):
        xml = compile_to_ompi_xml(genkautz_routed_schedule)
        result = execute_routed_xml(xml, genkautz_3_10, buffer_bytes=64 * 2 ** 20,
                                    fabric=cerio_hpc_fabric())
        assert result.throughput > 0
        assert result.schedule_kind == "routed"

    def test_unknown_dialect_rejected(self, cube3, cube3_link_schedule):
        xml = compile_to_msccl_xml(cube3_link_schedule)
        with pytest.raises(ValueError):
            execute_link_xml(xml, cube3, 1024, dialect="nccl")

    def test_msccl_and_oneccl_execution_agree(self, cube3, cube3_link_schedule):
        fabric = a100_ml_fabric()
        buf = 2 ** 26
        r1 = execute_link_xml(compile_to_msccl_xml(cube3_link_schedule), cube3, buf,
                              fabric=fabric, dialect="msccl")
        r2 = execute_link_xml(compile_to_oneccl_xml(cube3_link_schedule), cube3, buf,
                              fabric=fabric, dialect="oneccl")
        assert r1.completion_time == pytest.approx(r2.completion_time, rel=1e-9)
