"""Differential tests for the repro.perf kernel and warm-start layer.

Covers the fill kernels (numpy vs the CSR algorithm the JIT compiles vs the
scalar reference oracle) on randomized topologies/fabrics/overlap/cluster
programs, adversarial exact-tie bottleneck patterns, kernel selection and
numba fallback, constraint-structure hashing, the batched family solver,
and the warm-started highs-native backend (driven through a fake highspy
module so the native code path runs everywhere).
"""

import random

import networkx as nx
import numpy as np
import pytest

from repro.cluster import FlowInjector
from repro.constants import FLOW_TOL
from repro.core.mcf_link import solve_link_mcf
from repro.engine import (
    Engine,
    HighsNativeBackend,
    MCFProblem,
    SolutionCache,
    backend_names,
    get_backend,
)
from repro.perf import (
    FillWorkspace,
    fill_kernel_name,
    fill_rates_csr,
    fill_rates_numpy,
    numba_available,
    run_fill,
    set_fill_kernel,
    solve_family,
    structure_hash,
    uniform_rhs_scale,
)
from repro.perf import _numba_impl
from repro.simulator import (
    FabricModel,
    FluidFlow,
    cerio_hpc_fabric,
    compile_flows,
    engine_counters,
    fabric_from_spec,
    ideal_fabric,
    reset_engine_counters,
    simulate_flows,
    simulate_flows_reference,
)
from repro.topology import from_spec, hypercube, ring


@pytest.fixture(autouse=True)
def _reset_kernel():
    """Restore env-driven kernel selection after every test."""
    yield
    set_fill_kernel(None)


def _random_flows(topo, rng, n_flows, zero_fraction=0.1):
    """Random flows along shortest paths with heterogeneous sizes."""
    paths = dict(nx.all_pairs_shortest_path(topo.graph))
    nodes = topo.nodes
    flows = []
    for _ in range(n_flows):
        s, d = rng.sample(nodes, 2)
        size = 0.0 if rng.random() < zero_fraction else rng.uniform(1.0, 1e6)
        flows.append(FluidFlow(path=tuple(paths[s][d]), size_bytes=size))
    return flows


def _all_kernel_impls(program, active):
    """Rates/rounds from every kernel implementation available here."""
    results = {
        "numpy": fill_rates_numpy(program, active),
        "python-csr": fill_rates_csr(
            program, active, impl=_numba_impl.fill_csr_python),
    }
    if numba_available():
        results["numba"] = fill_rates_csr(program, active)
    return results


class TestKernelDifferential:
    """All kernels agree with each other and with the scalar oracle."""

    TOPOLOGIES = ["ring:n=6", "hypercube:dim=3", "torus:dims=3x3",
                  "rrg:d=3,n=12,seed=5", "genkautz:d=3,n=10"]
    FABRICS = [
        ideal_fabric(link_bandwidth=100.0),
        cerio_hpc_fabric(),
        FabricModel(link_bandwidth=50.0, injection_bandwidth=60.0,
                    per_hop_latency=1e-4, per_message_overhead=1e-3),
        fabric_from_spec("hpc:scale=0~1:0.5"),
    ]

    @pytest.mark.parametrize("spec", TOPOLOGIES)
    @pytest.mark.parametrize("fabric_idx", range(len(FABRICS)))
    def test_fill_rates_agree_across_kernels(self, spec, fabric_idx):
        topo = from_spec(spec)
        fabric = self.FABRICS[fabric_idx]
        rng = random.Random(hash(("kern", spec, fabric_idx)) % (2 ** 31))
        flows = _random_flows(topo, rng, n_flows=40, zero_fraction=0.0)
        program = compile_flows(topo, flows, fabric)
        active = np.ones(program.num_flows, dtype=bool)
        # Randomly deactivate some flows: mid-simulation refill shape.
        active[rng.sample(range(program.num_flows), 8)] = False
        results = _all_kernel_impls(program, active)
        base_rates, base_rounds = results["numpy"]
        for name, (rates, rounds) in results.items():
            np.testing.assert_allclose(
                rates, base_rates, rtol=1e-9, atol=1e-9,
                err_msg=f"kernel {name} disagrees with numpy")
            assert rounds == base_rounds, f"kernel {name} round count differs"
        assert not base_rates[active].min() <= 0.0
        assert (base_rates[~active] == 0.0).all()

    @pytest.mark.parametrize("kernel", ["numpy", "python-csr"])
    @pytest.mark.parametrize("spec", TOPOLOGIES[:3])
    def test_simulation_matches_reference_under_each_kernel(self, kernel, spec):
        topo = from_spec(spec)
        fabric = cerio_hpc_fabric()
        rng = random.Random(hash(("sim", kernel, spec)) % (2 ** 31))
        flows = _random_flows(topo, rng, n_flows=30)
        set_fill_kernel(kernel)
        fast = simulate_flows(topo, flows, fabric)
        slow = simulate_flows_reference(topo, flows, fabric)
        assert fast.completion_time == pytest.approx(slow.completion_time,
                                                     abs=1e-9)
        for a, b in zip(fast.flow_completion_times, slow.flow_completion_times):
            assert a == pytest.approx(b, abs=1e-9)

    @pytest.mark.parametrize("kernel", ["numpy", "python-csr"])
    def test_overlap_program_agrees(self, kernel):
        topo = hypercube(3)
        rng = random.Random(11)
        flows = _random_flows(topo, rng, n_flows=24, zero_fraction=0.0)
        program = compile_flows(
            topo, flows, cerio_hpc_fabric(),
            set_ids=[i % 2 for i in range(len(flows))],
            set_names=["a", "b"])
        active = np.ones(program.num_flows, dtype=bool)
        results = _all_kernel_impls(program, active)
        base_rates, base_rounds = results["numpy"]
        rates, rounds = results["python-csr"]
        np.testing.assert_allclose(rates, base_rates, rtol=1e-9, atol=1e-9)
        assert rounds == base_rounds

    @pytest.mark.parametrize("kernel", ["numpy", "python-csr"])
    def test_cluster_injector_fills_agree(self, kernel):
        """Injected/retired cluster programs fill identically on all kernels."""
        topo = hypercube(3)
        fabric = cerio_hpc_fabric()
        rng = random.Random(23)
        set_fill_kernel(kernel)
        injector = FlowInjector(topo, fabric)
        injector.inject(_random_flows(topo, rng, 10, zero_fraction=0.0), "a")
        rates_a, _ = injector.fill()
        injector.inject(_random_flows(topo, rng, 10, zero_fraction=0.0), "b")
        rates_b, _ = injector.fill()
        # Compare against a kernel-independent fresh numpy fill.
        program = injector.program()
        expect, _ = fill_rates_numpy(
            program, np.ones(program.num_flows, dtype=bool))
        np.testing.assert_allclose(rates_b, expect, rtol=1e-9, atol=1e-9)
        # Drain set "a" and retire it; survivors keep filling consistently.
        injector.advance(np.full(injector.num_flows, 1e12), 1.0)
        injector.retire()
        assert injector.num_flows == 0

    def test_exact_tie_bottlenecks_identical_rounds(self):
        """Adversarial exact ties: every kernel groups them in one round.

        A star of identical-capacity links with one flow each is an exact
        |links|-way tie; integer capacities make the shares exactly
        representable, so all implementations must freeze the whole tie in
        the same round and return identical round counts.
        """
        edges = [(0, i) for i in range(1, 9)]
        graph = nx.DiGraph()
        graph.add_nodes_from(range(9))
        for u, v in edges:
            graph.add_edge(u, v, cap=1.0)
            graph.add_edge(v, u, cap=1.0)
        from repro.topology.base import Topology
        topo = Topology(name="star8", graph=graph)
        flows = [FluidFlow(path=(0, i), size_bytes=64.0) for i in range(1, 9)]
        program = compile_flows(topo, flows, ideal_fabric(link_bandwidth=2.0))
        active = np.ones(program.num_flows, dtype=bool)
        results = _all_kernel_impls(program, active)
        for name, (rates, rounds) in results.items():
            assert rounds == 1, f"{name} split an exact tie across rounds"
            np.testing.assert_array_equal(rates, np.full(8, 2.0))

    def test_two_tier_exact_ties(self):
        """Two exact tie groups at different shares: exactly two rounds."""
        topo = ring(6)
        flows = ([FluidFlow(path=(i, (i + 1) % 6), size_bytes=100.0)
                  for i in range(3)]
                 + [FluidFlow(path=(3, 4), size_bytes=100.0),
                    FluidFlow(path=(3, 4), size_bytes=100.0)])
        program = compile_flows(topo, flows, ideal_fabric(link_bandwidth=8.0))
        active = np.ones(program.num_flows, dtype=bool)
        results = _all_kernel_impls(program, active)
        base_rates, base_rounds = results["numpy"]
        assert base_rounds == 2
        for name, (rates, rounds) in results.items():
            assert rounds == base_rounds, name
            np.testing.assert_array_equal(rates, base_rates)


class TestKernelSelection:
    def test_auto_resolves(self):
        set_fill_kernel("auto")
        assert fill_kernel_name() in ("numba", "numpy")

    def test_numba_request_falls_back_when_unavailable(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_NUMBA", "1")
        set_fill_kernel("numba")
        assert not numba_available()
        assert fill_kernel_name() == "numpy"
        program = compile_flows(
            ring(4), [FluidFlow(path=(0, 1), size_bytes=10.0)],
            ideal_fabric(link_bandwidth=5.0))
        rates, rounds, kernel = run_fill(
            program, np.ones(1, dtype=bool))
        assert kernel == "numpy"
        assert rates[0] == pytest.approx(5.0)

    def test_env_selection(self, monkeypatch):
        set_fill_kernel(None)
        monkeypatch.setenv("REPRO_KERNEL", "python-csr")
        assert fill_kernel_name() == "python-csr"
        monkeypatch.setenv("REPRO_KERNEL", "bogus")
        with pytest.raises(ValueError):
            fill_kernel_name()

    def test_unknown_override_rejected(self):
        with pytest.raises(ValueError):
            set_fill_kernel("fortran")

    def test_counters_surface_kernel_and_seconds(self):
        reset_engine_counters()
        set_fill_kernel("python-csr")
        simulate_flows(ring(4), [FluidFlow(path=(0, 1), size_bytes=100.0)],
                       ideal_fabric(link_bandwidth=5.0))
        counters = engine_counters()
        assert counters["kernel"] == "python-csr"
        assert counters["fill_seconds"] > 0.0
        reset_engine_counters()
        counters = engine_counters()
        assert counters["fill_seconds"] == 0.0
        assert counters["kernel"] == ""

    def test_footer_shows_kernel_and_warm_stats(self):
        from repro.analysis import format_engine_footer
        line = format_engine_footer(
            {"hits": 1, "misses": 2, "disk_hits": 0, "backend": "scipy-highs",
             "basis_hits": 3, "basis_misses": 1},
            {"hits": 0, "misses": 0},
            sim_stats={"fill_rounds": 10, "events": 5, "kernel": "numpy",
                       "fill_seconds": 0.25})
        assert "sim: 10 fill rounds / 5 events" in line
        assert "[kernel=numpy, 0.250s fill]" in line
        assert "warm-start: 3 basis hits / 1 cold" in line


class TestFillWorkspace:
    def test_workspace_reuse_matches_fresh_fills(self):
        topo = hypercube(3)
        rng = random.Random(3)
        flows = _random_flows(topo, rng, n_flows=30, zero_fraction=0.0)
        program = compile_flows(topo, flows, cerio_hpc_fabric())
        ws = FillWorkspace(program)
        active = np.ones(program.num_flows, dtype=bool)
        for _ in range(4):
            reused, r1 = fill_rates_csr(program, active, workspace=ws,
                                        impl=_numba_impl.fill_csr_python)
            fresh, r2 = fill_rates_numpy(program, active)
            assert reused is ws.rates  # the arena, not a copy
            np.testing.assert_allclose(reused, fresh, rtol=1e-9, atol=1e-9)
            assert r1 == r2
            # Shrink the active set as execute() would between events.
            active[rng.randrange(program.num_flows)] = False

    def test_csr_layout_round_trips_incidence(self):
        program = compile_flows(
            hypercube(2),
            [FluidFlow(path=(0, 1), size_bytes=1.0),
             FluidFlow(path=(0, 2, 3), size_bytes=2.0)],
            cerio_hpc_fabric())
        ws = FillWorkspace(program)
        entries = set(zip(program.inc_res.tolist(), program.inc_flow.tolist()))
        rebuilt = set()
        for r in range(ws.num_res):
            for k in range(ws.res_ptr[r], ws.res_ptr[r + 1]):
                rebuilt.add((r, int(ws.res_flows[k])))
        assert rebuilt == entries
        rebuilt = set()
        for f in range(ws.num_flows):
            for k in range(ws.flow_ptr[f], ws.flow_ptr[f + 1]):
                rebuilt.add((int(ws.flow_res[k]), f))
        assert rebuilt == entries


class TestStructureHash:
    def _builder(self, topo):
        from repro.core.mcf_link import build_link_mcf
        return build_link_mcf(MCFProblem("mcf-link", topo, maximize=True))

    def test_stable_across_builds(self):
        assert (structure_hash(self._builder(hypercube(3)))
                == structure_hash(self._builder(hypercube(3))))

    def test_rhs_change_keeps_hash(self):
        base = self._builder(hypercube(3))
        scaled = self._builder(hypercube(3).with_capacity(4.0))
        assert structure_hash(base) == structure_hash(scaled)

    def test_structure_change_changes_hash(self):
        assert (structure_hash(self._builder(hypercube(3)))
                != structure_hash(self._builder(ring(8))))

    def test_uniform_rhs_scale(self):
        base = np.array([2.0, 0.0, 4.0])
        assert uniform_rhs_scale(base, base * 3.0) == pytest.approx(3.0)
        assert uniform_rhs_scale(base, base) == pytest.approx(1.0)
        assert uniform_rhs_scale(base, np.array([6.0, 1.0, 12.0])) is None
        assert uniform_rhs_scale(base, np.array([6.0, 0.0, 13.0])) is None
        assert uniform_rhs_scale(base, -base) is None
        assert uniform_rhs_scale(np.zeros(2), np.zeros(2)) == 1.0
        assert uniform_rhs_scale(base, np.zeros(3)) is None


class TestSolveFamily:
    def _family(self, scales):
        cube = hypercube(3)
        return [MCFProblem("mcf-link", cube.with_capacity(s), maximize=True)
                for s in scales]

    def test_scaled_family_matches_cold_solves(self):
        scales = [1.0, 0.75, 0.5, 0.25]
        engine = Engine(cache=SolutionCache())
        solutions, stats = solve_family(self._family(scales), engine=engine,
                                        use_cache=False)
        assert stats["solves"] == 1
        assert stats["scaled"] == len(scales) - 1
        cold_engine = Engine(cache=SolutionCache(enabled=False))
        for scale, solution in zip(scales, solutions):
            cold = cold_engine.solve(
                MCFProblem("mcf-link", hypercube(3).with_capacity(scale),
                           maximize=True), use_cache=False)
            assert solution.objective == pytest.approx(cold.objective,
                                                       abs=FLOW_TOL)

    def test_family_populates_engine_cache(self):
        engine = Engine(cache=SolutionCache())
        problems = self._family([1.0, 0.5])
        solutions, stats = solve_family(problems, engine=engine)
        assert stats["solves"] == 1 and stats["scaled"] == 1
        # A later per-problem solve must hit the same cache entries.
        for problem in problems:
            again = engine.solve(problem)
            assert again.info["cache"] == "hit"
        # Re-running the family is all cache hits.
        _, stats2 = solve_family(problems, engine=engine)
        assert stats2 == {"solves": 0, "scaled": 0, "cache_hits": 2}

    def test_structure_break_forces_solve(self):
        cube = hypercube(3)
        problems = [MCFProblem("mcf-link", cube, maximize=True),
                    MCFProblem("mcf-link", ring(8), maximize=True),
                    MCFProblem("mcf-link", ring(8).with_capacity(2.0),
                               maximize=True)]
        _, stats = solve_family(problems, engine=Engine(cache=SolutionCache()),
                                use_cache=False)
        assert stats["solves"] == 2 and stats["scaled"] == 1

    def test_engine_method_delegates(self):
        engine = Engine(cache=SolutionCache())
        solutions, stats = engine.solve_family(self._family([1.0, 2.0]))
        assert len(solutions) == 2
        assert stats["scaled"] == 1
        assert solutions[1].info["family"] == "scaled-rhs"

    def test_scaled_solutions_extract_like_solved_ones(self):
        """The derived members support the same block extraction path."""
        scales = [1.0, 0.5]
        solutions, _ = solve_family(
            self._family(scales), engine=Engine(cache=SolutionCache()),
            use_cache=False)
        full = solutions[0].block("f")
        half = solutions[1].block("f")
        np.testing.assert_allclose(half, 0.5 * full, atol=FLOW_TOL)

    def test_solve_link_mcf_agrees_with_family_members(self):
        """Family-derived optima equal the formulation front-end's."""
        topo = hypercube(3).with_capacity(0.5)
        solutions, _ = solve_family(
            [MCFProblem("mcf-link", hypercube(3), maximize=True),
             MCFProblem("mcf-link", topo, maximize=True)],
            engine=Engine(cache=SolutionCache()), use_cache=False)
        direct = solve_link_mcf(topo)
        assert solutions[1].objective == pytest.approx(
            direct.concurrent_flow, abs=max(FLOW_TOL, 1e-9))


# ----------------------------------------------------------------------- #
# Fake highspy: the minimal API surface HighsNativeBackend drives, backed
# by scipy.  Lets the native path (model reuse, re-bounding, basis-hit
# accounting) run in environments without the real bindings.
# ----------------------------------------------------------------------- #
class _FakeMatrix:
    """Attribute bag mirroring highspy's HighsSparseMatrix."""

    def __init__(self):
        self.format_ = None
        self.num_col_ = 0
        self.num_row_ = 0
        self.start_ = None
        self.index_ = None
        self.value_ = None


class _FakeLp:
    """Attribute bag mirroring highspy's HighsLp."""

    def __init__(self):
        self.num_col_ = 0
        self.num_row_ = 0
        self.col_cost_ = None
        self.col_lower_ = None
        self.col_upper_ = None
        self.row_lower_ = None
        self.row_upper_ = None
        self.a_matrix_ = _FakeMatrix()


class _FakeSolution:
    def __init__(self, x):
        self.col_value = x


class _FakeHighs:
    """Solves the stored LP with scipy; counts re-bound (warm) calls."""

    def __init__(self):
        self.lp = None
        self.rebound_calls = 0
        self._x = None
        self._status = None

    def setOptionValue(self, name, value):
        pass

    def passModel(self, lp):
        self.lp = lp

    def changeColsBoundsByRange(self, start, stop, lower, upper):
        self.rebound_calls += 1
        self.lp.col_lower_ = np.asarray(lower, dtype=float)
        self.lp.col_upper_ = np.asarray(upper, dtype=float)

    def changeRowsBoundsByRange(self, start, stop, lower, upper):
        self.rebound_calls += 1
        self.lp.row_lower_ = np.asarray(lower, dtype=float)
        self.lp.row_upper_ = np.asarray(upper, dtype=float)

    def run(self):
        import scipy.sparse as sp
        from scipy.optimize import linprog

        lp = self.lp
        matrix = sp.csc_matrix(
            (lp.a_matrix_.value_, lp.a_matrix_.index_, lp.a_matrix_.start_),
            shape=(lp.num_row_, lp.num_col_)).tocsr()
        lower = np.asarray(lp.row_lower_, dtype=float)
        upper = np.asarray(lp.row_upper_, dtype=float)
        ub_rows = np.isinf(lower) & (lower < 0)
        eq_rows = ~ub_rows
        kwargs = {}
        if ub_rows.any():
            kwargs["A_ub"] = matrix[ub_rows]
            kwargs["b_ub"] = upper[ub_rows]
        if eq_rows.any():
            kwargs["A_eq"] = matrix[eq_rows]
            kwargs["b_eq"] = upper[eq_rows]
        bounds = np.column_stack([lp.col_lower_, lp.col_upper_])
        result = linprog(lp.col_cost_, bounds=bounds, method="highs", **kwargs)
        self._x = result.x
        self._status = "optimal" if result.success else "failed"

    def getModelStatus(self):
        return self._status

    def getSolution(self):
        return _FakeSolution(self._x)


class _FakeStatus:
    kOptimal = "optimal"


class _FakeFormat:
    kColwise = "colwise"


class _FakeHighspy:
    Highs = _FakeHighs
    HighsLp = _FakeLp
    HighsModelStatus = _FakeStatus
    MatrixFormat = _FakeFormat


class TestHighsNativeBackend:
    def test_registered(self):
        assert "highs-native" in backend_names()
        assert isinstance(get_backend("highs-native"), HighsNativeBackend)

    def test_warm_start_reuses_model(self):
        backend = HighsNativeBackend("test-native", highs_module=_FakeHighspy())
        engine = Engine(cache=SolutionCache(enabled=False))
        cube = hypercube(3)
        problems = [MCFProblem("mcf-link", cube.with_capacity(s), maximize=True)
                    for s in (1.0, 2.0, 3.0)]
        from repro.engine.backends import register_backend
        register_backend(backend)
        solutions = [engine.solve(p, backend="test-native", use_cache=False)
                     for p in problems]
        stats = backend.warm_stats()
        assert stats["basis_misses"] == 1
        assert stats["basis_hits"] == 2
        assert stats["fallback_solves"] == 0
        assert solutions[0].info["warm_start"] == "cold"
        assert solutions[1].info["warm_start"] == "basis"
        scipy_backend = get_backend("scipy-highs")
        for problem, solution in zip(problems, solutions):
            from repro.core.mcf_link import build_link_mcf
            cold = scipy_backend.solve(build_link_mcf(problem), maximize=True)
            assert solution.objective == pytest.approx(cold.objective,
                                                       abs=1e-6)

    def test_engine_stats_merge_warm_counters(self):
        backend = HighsNativeBackend("test-native-2",
                                     highs_module=_FakeHighspy())
        from repro.engine.backends import register_backend
        register_backend(backend)
        engine = Engine(backend="test-native-2",
                        cache=SolutionCache(enabled=False))
        engine.solve(MCFProblem("mcf-link", hypercube(2), maximize=True),
                     use_cache=False)
        stats = engine.stats()
        assert stats["basis_misses"] == 1
        assert "basis_hits" in stats

    def test_fallback_without_highspy(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_HIGHSPY", "1")
        backend = HighsNativeBackend("test-fallback")
        problem = MCFProblem("mcf-link", hypercube(2), maximize=True)
        engine = Engine(cache=SolutionCache(enabled=False))
        from repro.engine.backends import register_backend
        register_backend(backend)
        solution = engine.solve(problem, backend="test-fallback",
                                use_cache=False)
        assert backend.warm_stats()["fallback_solves"] == 1
        cold = engine.solve(problem, backend="scipy-highs", use_cache=False)
        assert solution.objective == pytest.approx(cold.objective, abs=1e-6)

    def test_model_registry_bounded(self):
        backend = HighsNativeBackend("test-lru", max_models=1,
                                     highs_module=_FakeHighspy())
        engine = Engine(cache=SolutionCache(enabled=False))
        from repro.engine.backends import register_backend
        register_backend(backend)
        engine.solve(MCFProblem("mcf-link", hypercube(2), maximize=True),
                     backend="test-lru", use_cache=False)
        engine.solve(MCFProblem("mcf-link", ring(6), maximize=True),
                     backend="test-lru", use_cache=False)
        assert backend.warm_stats()["live_models"] == 1

    def test_family_through_native_backend(self):
        """solve_family + warm backend: one cold solve, rest scaled."""
        backend = HighsNativeBackend("test-native-family",
                                     highs_module=_FakeHighspy())
        from repro.engine.backends import register_backend
        register_backend(backend)
        engine = Engine(cache=SolutionCache())
        problems = [MCFProblem("mcf-link", hypercube(3).with_capacity(s),
                               maximize=True) for s in (1.0, 0.5, 0.25)]
        solutions, stats = solve_family(problems, backend="test-native-family",
                                        engine=engine, use_cache=False)
        assert stats["solves"] == 1 and stats["scaled"] == 2
        assert backend.warm_stats()["basis_misses"] == 1
        base = solutions[0].objective
        assert solutions[1].objective == pytest.approx(0.5 * base, rel=1e-9)
        assert solutions[2].objective == pytest.approx(0.25 * base, rel=1e-9)
