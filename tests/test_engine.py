"""Tests for the unified solve engine: problems, backends, cache, runner."""

import pytest

from repro.analysis import compare_schemes
from repro.core import solve_decomposed_mcf, solve_link_mcf
from repro.engine import (
    Engine,
    MCFProblem,
    ParallelRunner,
    SolutionCache,
    backend_names,
    formulation_names,
    get_backend,
    get_engine,
    run_parallel,
)
from repro.topology import generalized_kautz, hypercube


@pytest.fixture
def cube():
    return hypercube(3)


class TestMCFProblem:
    def test_cache_key_stable_across_instances(self, cube):
        p1 = MCFProblem("mcf-link", cube, maximize=True)
        p2 = MCFProblem("mcf-link", hypercube(3), maximize=True)
        assert p1.cache_key() == p2.cache_key()

    def test_cache_key_sensitive_to_formulation_and_params(self, cube):
        base = MCFProblem("mcf-link", cube, maximize=True)
        other_form = MCFProblem("mcf-master", cube, maximize=True)
        other_params = MCFProblem("mcf-link", cube, params={"terminals": [0, 1]},
                                  maximize=True)
        keys = {base.cache_key(), other_form.cache_key(), other_params.cache_key()}
        assert len(keys) == 3

    def test_param_order_does_not_matter(self, cube):
        a = MCFProblem("tsmcf", cube, params={"num_steps": 4, "terminals": [0, 1]})
        b = MCFProblem("tsmcf", cube, params={"terminals": [0, 1], "num_steps": 4})
        assert a.cache_key() == b.cache_key()

    def test_all_five_formulations_registered(self):
        names = formulation_names()
        for expected in ("mcf-link", "mcf-path", "mcf-master", "mcf-child",
                         "tsmcf", "tsmcf-master", "tsmcf-child"):
            assert expected in names


class TestBackends:
    def test_default_backends_registered(self):
        names = backend_names()
        assert "scipy-highs" in names
        assert "scipy-highs-ds" in names
        assert "scipy-highs-ipm" in names

    def test_unknown_backend_rejected(self):
        with pytest.raises(KeyError):
            get_backend("mosek")

    def test_alternative_backend_same_optimum(self, cube):
        problem = MCFProblem("mcf-link", cube, maximize=True)
        engine = Engine(cache=SolutionCache(enabled=False))
        default = engine.solve(problem)
        dual_simplex = engine.solve(problem, backend="scipy-highs-ds")
        assert dual_simplex.objective == pytest.approx(default.objective, rel=1e-7)

    def test_engine_rejects_unknown_backend(self):
        with pytest.raises(KeyError):
            Engine(backend="does-not-exist")

    def test_cache_entries_are_per_backend(self, cube):
        # A solution cached under one backend must not answer for another
        # (different backends may return different optimal vertices).
        engine = Engine()
        problem = MCFProblem("mcf-link", cube, maximize=True)
        engine.solve(problem)
        other = engine.solve(problem, backend="scipy-highs-ds")
        assert other.info["cache"] == "miss"
        assert other.info["backend"] == "scipy-highs-ds"
        assert engine.solve(problem).info["backend"] == "scipy-highs"


class TestSolutionCache:
    def test_hit_vs_miss_equivalence(self, cube):
        engine = Engine()
        problem = MCFProblem("mcf-link", cube, maximize=True)
        fresh = engine.solve(problem)
        cached = engine.solve(problem)
        assert fresh.info["cache"] == "miss"
        assert cached.info["cache"] == "hit"
        assert cached.objective == fresh.objective
        # The cached copy drops near-zero values; every significant variable
        # must round-trip exactly and the rest read back as 0.0.
        from repro.constants import FLOW_TOL

        for key, val in fresh.values.items():
            if abs(val) > FLOW_TOL:
                assert cached.value(key) == val
            else:
                assert abs(cached.value(key)) <= FLOW_TOL
        assert engine.cache.hits == 1 and engine.cache.misses == 1

    def test_bypass_flag_skips_cache(self, cube):
        engine = Engine()
        problem = MCFProblem("mcf-link", cube, maximize=True)
        first = engine.solve(problem, use_cache=False)
        second = engine.solve(problem, use_cache=False)
        assert first.info["cache"] == "bypass"
        assert second.info["cache"] == "bypass"
        assert engine.cache.hits == 0 and engine.cache.misses == 0
        assert engine.cache.size == 0
        assert second.objective == pytest.approx(first.objective)

    def test_disabled_cache_reports_bypass(self, cube):
        engine = Engine(cache=SolutionCache(enabled=False))
        solution = engine.solve(MCFProblem("mcf-link", cube, maximize=True))
        assert solution.info["cache"] == "bypass"

    def test_cache_key_includes_code_version(self, cube, monkeypatch):
        # A persistent disk cache from an older release must read as a miss.
        from repro.engine import problem as problem_mod

        p = MCFProblem("mcf-link", cube, maximize=True)
        current = p.cache_key()
        monkeypatch.setattr(problem_mod, "_code_version", lambda: "0.0.0")
        assert p.cache_key() != current

    def test_disk_round_trip(self, cube, tmp_path):
        problem = MCFProblem("mcf-link", cube, maximize=True)
        writer = Engine(cache=SolutionCache(cache_dir=str(tmp_path)))
        fresh = writer.solve(problem)
        # A brand-new engine with an empty memory tier but the same directory
        # must restore the identical solution from disk.
        reader = Engine(cache=SolutionCache(cache_dir=str(tmp_path)))
        restored = reader.solve(problem)
        assert restored.info["cache"] == "hit"
        assert reader.cache.disk_hits == 1
        assert restored.objective == fresh.objective
        from repro.constants import FLOW_TOL

        significant = {k: v for k, v in fresh.values.items() if abs(v) > FLOW_TOL}
        assert restored.values == significant

    @pytest.mark.parametrize("junk", [b"not a pickle", b"garbage\n", b""])
    def test_corrupt_disk_entry_is_a_miss(self, cube, tmp_path, junk):
        # pickle surfaces corruption as UnpicklingError, ValueError or
        # EOFError depending on the bytes; all must degrade to a miss.
        problem = MCFProblem("mcf-link", cube, maximize=True)
        key = f"{problem.cache_key()}-scipy-highs"
        (tmp_path / f"{key}.lps.pkl").write_bytes(junk)
        engine = Engine(cache=SolutionCache(cache_dir=str(tmp_path)))
        solution = engine.solve(problem)
        assert solution.info["cache"] == "miss"
        assert solution.objective > 0

    def test_flow_solution_meta_surfaces_engine_info(self, cube):
        solution = solve_link_mcf(cube)
        info = solution.meta["engine"]
        assert info["cache"] in ("hit", "miss")
        assert info["backend"] in backend_names()
        assert info["num_variables"] == solution.meta["num_variables"]

    def test_eviction_bounds_memory(self, cube):
        cache = SolutionCache(max_entries=2)
        from repro.core.solver import LPSolution

        for i in range(5):
            cache.put(f"key-{i}", LPSolution(objective=float(i), values={}))
        assert cache.size == 2


class TestRepeatedSweepUsesCache:
    def test_second_compare_run_solves_no_new_lps(self):
        """Acceptance: a repeated compare_schemes run is served from cache."""
        topo = generalized_kautz(3, 8)
        schemes = ["mcf-extp", "pmcf-disjoint", "sssp"]
        engine = get_engine()
        compare_schemes(topo, schemes, normalize=True)
        misses_after_first = engine.cache.misses
        hits_after_first = engine.cache.hits
        second = compare_schemes(topo, schemes, normalize=True)
        assert engine.cache.misses == misses_after_first, \
            "second run should hit the cache for every LP"
        assert engine.cache.hits > hits_after_first
        assert all(r.error is None for r in second)


class TestParallelRunner:
    def test_serial_and_thread_preserve_order(self):
        items = list(range(20))

        def square(x):
            return x * x

        assert ParallelRunner(jobs=1).map(square, items) == [x * x for x in items]
        assert ParallelRunner(jobs=4, mode="thread").map(square, items) == \
            [x * x for x in items]

    def test_auto_mode_selection(self):
        assert ParallelRunner(jobs=1).mode == "serial"
        assert ParallelRunner(jobs=4).mode == "thread"

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            ParallelRunner(jobs=2, mode="gpu")

    def test_run_parallel_convenience(self):
        assert run_parallel(len, ["a", "bb", "ccc"], jobs=2) == [1, 2, 3]

    def test_exceptions_propagate(self):
        def boom(x):
            raise RuntimeError("nope")

        with pytest.raises(RuntimeError):
            ParallelRunner(jobs=2, mode="thread").map(boom, [1, 2])


class TestParallelCompare:
    def test_parallel_compare_identical_to_serial(self):
        topo = hypercube(3)
        schemes = ["mcf-extp", "pmcf-disjoint", "ewsp", "sssp"]
        serial = compare_schemes(topo, schemes, normalize=True, jobs=1)
        parallel = compare_schemes(topo, schemes, normalize=True, jobs=3)
        assert [r.scheme for r in parallel] == [r.scheme for r in serial]
        for a, b in zip(serial, parallel):
            assert b.concurrent_flow == pytest.approx(a.concurrent_flow, rel=1e-9)
            assert b.all_to_all_time == pytest.approx(a.all_to_all_time, rel=1e-9)
            assert b.normalized_time == pytest.approx(a.normalized_time, rel=1e-9)

    def test_decomposed_parallel_child_lps_match_serial(self):
        topo = hypercube(3)
        serial = solve_decomposed_mcf(topo, n_jobs=1)
        parallel = solve_decomposed_mcf(topo, n_jobs=2)
        assert parallel.concurrent_flow == pytest.approx(serial.concurrent_flow,
                                                         rel=1e-7)
