"""Shared fixtures: small topologies and pre-solved schedules reused across tests.

Fixtures that require an LP solve are session-scoped so the solver runs once
per test session, keeping the suite fast while letting many tests assert
against the same optimal solutions.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, settings

from repro.topology import (
    bidirectional_ring,
    complete,
    complete_bipartite,
    generalized_kautz,
    hypercube,
    ring,
    torus,
    torus_2d,
    twisted_hypercube,
)


# Property-based tests: deterministic examples (stable CI runtime) and no
# per-example deadline (some examples trigger LP solves).
settings.register_profile(
    "repro-ci",
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro-ci")


@pytest.fixture(scope="session")
def ring5():
    """Unidirectional 5-node ring; optimal all-to-all F = 1/10."""
    return ring(5)


@pytest.fixture(scope="session")
def complete4():
    """Complete digraph on 4 nodes; optimal F = 1."""
    return complete(4)


@pytest.fixture(scope="session")
def cube3():
    """3D hypercube (N=8, degree 3); optimal F = 1/4."""
    return hypercube(3)


@pytest.fixture(scope="session")
def twisted3():
    """3D twisted hypercube (N=8, degree 3)."""
    return twisted_hypercube(3)


@pytest.fixture(scope="session")
def bipartite44():
    """Complete bipartite K4,4 (N=8, degree 4), the paper's GPU-testbed topology."""
    return complete_bipartite(4, 4)


@pytest.fixture(scope="session")
def torus33():
    """2D 3x3 torus (N=9, degree 4)."""
    return torus_2d(3)


@pytest.fixture(scope="session")
def torus333():
    """3D 3x3x3 torus (N=27, degree 6), the paper's TACC topology."""
    return torus([3, 3, 3])


@pytest.fixture(scope="session")
def genkautz_3_10():
    """Generalized Kautz graph with degree 3 and 10 nodes."""
    return generalized_kautz(3, 10)


@pytest.fixture(scope="session")
def genkautz_4_16():
    """Generalized Kautz graph with degree 4 and 16 nodes."""
    return generalized_kautz(4, 16)


@pytest.fixture(scope="session")
def biring6():
    """Bidirectional 6-node ring (degree 2)."""
    return bidirectional_ring(6)


# --------------------------------------------------------------------------- #
# Pre-solved schedules (expensive; shared across the whole session).
# --------------------------------------------------------------------------- #
@pytest.fixture(scope="session")
def cube3_link_mcf(cube3):
    from repro.core import solve_link_mcf

    return solve_link_mcf(cube3)


@pytest.fixture(scope="session")
def cube3_decomposed_mcf(cube3):
    from repro.core import solve_decomposed_mcf

    return solve_decomposed_mcf(cube3)


@pytest.fixture(scope="session")
def cube3_tsmcf(cube3):
    from repro.core import solve_timestepped_mcf

    return solve_timestepped_mcf(cube3)


@pytest.fixture(scope="session")
def cube3_link_schedule(cube3_tsmcf):
    from repro.schedule import chunk_timestepped_flow

    return chunk_timestepped_flow(cube3_tsmcf)


@pytest.fixture(scope="session")
def genkautz_extp(genkautz_3_10):
    from repro.core import solve_mcf_extract_paths

    return solve_mcf_extract_paths(genkautz_3_10)


@pytest.fixture(scope="session")
def genkautz_routed_schedule(genkautz_extp):
    from repro.schedule import chunk_path_schedule

    return chunk_path_schedule(genkautz_extp)
