"""Tests for schedule validation (repro.schedule.validate)."""

import pytest

from repro.schedule import (
    Chunk,
    LinkSchedule,
    LinkSendOp,
    RouteAssignment,
    RoutedSchedule,
    ScheduleValidationError,
    validate_link_schedule,
    validate_routed_schedule,
)
from repro.topology import complete, ring


def _complete3():
    return complete(3)


class TestLinkValidation:
    def test_direct_exchange_valid(self):
        topo = _complete3()
        ops = [LinkSendOp(Chunk(s, d, 0.0, 1.0), s, d, 1)
               for s, d in topo.commodities()]
        validate_link_schedule(LinkSchedule(topo, 1, ops))

    def test_missing_delivery_detected(self):
        topo = _complete3()
        ops = [LinkSendOp(Chunk(s, d, 0.0, 1.0), s, d, 1)
               for s, d in topo.commodities() if (s, d) != (0, 1)]
        with pytest.raises(ScheduleValidationError, match=r"\(0,1\)"):
            validate_link_schedule(LinkSchedule(topo, 1, ops))

    def test_partial_delivery_detected(self):
        topo = _complete3()
        ops = [LinkSendOp(Chunk(s, d, 0.0, 1.0), s, d, 1)
               for s, d in topo.commodities() if (s, d) != (0, 1)]
        ops.append(LinkSendOp(Chunk(0, 1, 0.0, 0.5), 0, 1, 1))
        with pytest.raises(ScheduleValidationError, match="delivered"):
            validate_link_schedule(LinkSchedule(topo, 1, ops))

    def test_causality_violation_detected(self):
        # Node 1 forwards shard (0, 2) in step 1, before receiving it.
        ops = [
            LinkSendOp(Chunk(0, 1, 0.0, 1.0), 0, 1, 1),
            LinkSendOp(Chunk(1, 2, 0.0, 1.0), 1, 2, 1),
            LinkSendOp(Chunk(2, 0, 0.0, 1.0), 2, 0, 1),
            LinkSendOp(Chunk(0, 2, 0.0, 1.0), 1, 2, 1),   # too early
            LinkSendOp(Chunk(0, 2, 0.0, 1.0), 0, 1, 1),
            LinkSendOp(Chunk(1, 0, 0.0, 1.0), 1, 2, 1),
            LinkSendOp(Chunk(1, 0, 0.0, 1.0), 2, 0, 2),
            LinkSendOp(Chunk(2, 1, 0.0, 1.0), 2, 0, 1),
            LinkSendOp(Chunk(2, 1, 0.0, 1.0), 0, 1, 2),
        ]
        with pytest.raises(ScheduleValidationError, match="holds only"):
            validate_link_schedule(LinkSchedule(ring(3), 2, ops))

    def test_store_and_forward_two_steps_valid(self):
        topo = ring(3)
        ops = []
        for s, d in topo.commodities():
            # Route along the ring, one hop per step.
            path = [s]
            while path[-1] != d:
                path.append((path[-1] + 1) % 3)
            for i, (u, v) in enumerate(zip(path[:-1], path[1:]), start=1):
                ops.append(LinkSendOp(Chunk(s, d, 0.0, 1.0), u, v, i))
        validate_link_schedule(LinkSchedule(topo, 2, ops))

    def test_causality_can_be_relaxed(self):
        topo = ring(3)
        ops = [LinkSendOp(Chunk(0, 2, 0.0, 1.0), 1, 2, 1),
               LinkSendOp(Chunk(0, 2, 0.0, 1.0), 0, 1, 1),
               LinkSendOp(Chunk(2, 0, 0.0, 1.0), 2, 0, 1)]
        # With strict causality off, only delivery of (0,2) is checked, and the
        # other commodities fail first -- restrict to a single-commodity meta.
        schedule = LinkSchedule(topo, 1, ops, meta={"terminals": [0, 2]})
        with pytest.raises(ScheduleValidationError):
            validate_link_schedule(schedule)          # strict: node 1 sends too early
        validate_link_schedule(schedule, strict_causality=False)

    def test_terminals_meta_restricts_commodities(self):
        topo = _complete3()
        ops = [LinkSendOp(Chunk(0, 1, 0.0, 1.0), 0, 1, 1),
               LinkSendOp(Chunk(1, 0, 0.0, 1.0), 1, 0, 1)]
        schedule = LinkSchedule(topo, 1, ops, meta={"terminals": [0, 1]})
        validate_link_schedule(schedule)

    def test_unexpected_commodity_rejected(self):
        topo = _complete3()
        ops = [LinkSendOp(Chunk(0, 1, 0.0, 1.0), 0, 1, 1),
               LinkSendOp(Chunk(1, 0, 0.0, 1.0), 1, 0, 1),
               LinkSendOp(Chunk(2, 0, 0.0, 1.0), 2, 0, 1)]
        schedule = LinkSchedule(topo, 1, ops, meta={"terminals": [0, 1]})
        with pytest.raises(ScheduleValidationError, match="unexpected commodity"):
            validate_link_schedule(schedule)


class TestRoutedValidation:
    def test_valid_multi_path_cover(self):
        topo = complete(3)
        assignments = []
        for s, d in topo.commodities():
            assignments.append(RouteAssignment(Chunk(s, d, 0.0, 0.5), (s, d)))
            other = 3 - s - d
            assignments.append(RouteAssignment(Chunk(s, d, 0.5, 1.0), (s, other, d)))
        validate_routed_schedule(RoutedSchedule(topo, assignments))

    def test_uncovered_shard_detected(self):
        topo = complete(3)
        assignments = [RouteAssignment(Chunk(s, d, 0.0, 1.0), (s, d))
                       for s, d in topo.commodities() if (s, d) != (2, 1)]
        assignments.append(RouteAssignment(Chunk(2, 1, 0.0, 0.25), (2, 1)))
        with pytest.raises(ScheduleValidationError, match="not fully covered"):
            validate_routed_schedule(RoutedSchedule(topo, assignments))

    def test_overlapping_chunks_detected(self):
        topo = complete(3)
        assignments = [RouteAssignment(Chunk(s, d, 0.0, 1.0), (s, d))
                       for s, d in topo.commodities()]
        assignments.append(RouteAssignment(Chunk(0, 1, 0.0, 0.5), (0, 2, 1)))
        with pytest.raises(ScheduleValidationError, match="overlapping"):
            validate_routed_schedule(RoutedSchedule(topo, assignments))

    def test_generated_schedule_passes(self, genkautz_routed_schedule):
        validate_routed_schedule(genkautz_routed_schedule)
