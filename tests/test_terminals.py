"""Tests for terminal-restricted MCF (host-only commodities on augmented graphs)."""

import pytest

from repro.core import (
    augment_host_nic_bottleneck,
    solve_decomposed_mcf,
    solve_link_mcf,
    solve_master_lp,
    solve_timestepped_mcf,
)
from repro.core.mcf_link import terminal_commodities
from repro.schedule import chunk_timestepped_flow, validate_link_schedule
from repro.topology import bidirectional_ring, complete, ring


class TestTerminalCommodities:
    def test_default_is_all_pairs(self):
        topo = complete(4)
        assert len(terminal_commodities(topo)) == 12

    def test_restricted_set(self):
        topo = complete(4)
        pairs = terminal_commodities(topo, [0, 2])
        assert sorted(pairs) == [(0, 2), (2, 0)]

    def test_duplicates_ignored(self):
        topo = complete(4)
        assert len(terminal_commodities(topo, [1, 1, 3])) == 2

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            terminal_commodities(complete(4), [0, 9])

    def test_single_terminal_rejected(self):
        with pytest.raises(ValueError):
            terminal_commodities(complete(4), [2])


class TestTerminalRestrictedMCF:
    def test_link_mcf_with_terminals(self):
        # On a unidirectional 4-ring, all-to-all between nodes {0, 2} only:
        # each commodity consumes 2 hops of the 4 links -> F = 1 per commodity
        # is impossible (capacity 4 total, 2 commodities x 2 hops) -> F = 1.
        topo = ring(4)
        sol = solve_link_mcf(topo, terminals=[0, 2])
        assert set(sol.flows.keys()) == {(0, 2), (2, 0)}
        assert sol.concurrent_flow == pytest.approx(1.0, rel=1e-6)

    def test_decomposed_with_terminals_matches_link(self):
        topo = bidirectional_ring(6)
        terminals = [0, 2, 4]
        link = solve_link_mcf(topo, terminals=terminals).concurrent_flow
        decomposed = solve_decomposed_mcf(topo, terminals=terminals).concurrent_flow
        assert decomposed == pytest.approx(link, rel=1e-5)

    def test_fewer_terminals_means_more_flow(self):
        topo = bidirectional_ring(6)
        full = solve_master_lp(topo).concurrent_flow
        restricted = solve_master_lp(topo, terminals=[0, 3]).concurrent_flow
        assert restricted > full

    def test_augmented_tsmcf_schedule_valid(self):
        """End-to-end: bottlenecked host schedule delivers exactly the host shards."""
        topo = bidirectional_ring(4)
        aug = augment_host_nic_bottleneck(topo, host_bandwidth=1.0)
        flow = solve_timestepped_mcf(aug.topology, terminals=list(aug.host_nodes()))
        for s, d in terminal_commodities(aug.topology, list(aug.host_nodes())):
            assert flow.delivered_fraction(s, d) == pytest.approx(1.0, abs=1e-5)
        schedule = chunk_timestepped_flow(flow)
        schedule.meta["terminals"] = list(aug.host_nodes())
        validate_link_schedule(schedule)

    def test_bottleneck_halves_flow_on_ring(self):
        # Degree-2 ring with host bandwidth 1: the host boundary (cap 1 in,
        # 1 out) is half the NIC aggregate (2), so F drops accordingly.
        topo = bidirectional_ring(4)
        base = solve_master_lp(topo).concurrent_flow
        aug = augment_host_nic_bottleneck(topo, host_bandwidth=1.0)
        capped = solve_master_lp(aug.topology, terminals=list(aug.host_nodes())).concurrent_flow
        assert capped < base
        assert capped == pytest.approx(base / 2, rel=0.2)
