"""Tests for the schedule IR (Chunk, LinkSchedule, RoutedSchedule)."""

import pytest

from repro.schedule import Chunk, LinkSchedule, LinkSendOp, RouteAssignment, RoutedSchedule
from repro.topology import hypercube, ring


class TestChunk:
    def test_fraction_and_bytes(self):
        chunk = Chunk(source=0, destination=3, lo=0.25, hi=0.75)
        assert chunk.fraction == pytest.approx(0.5)
        assert chunk.bytes(1000) == pytest.approx(500)
        assert chunk.commodity == (0, 3)

    def test_invalid_interval(self):
        with pytest.raises(ValueError):
            Chunk(0, 1, 0.5, 0.5)
        with pytest.raises(ValueError):
            Chunk(0, 1, -0.1, 0.5)
        with pytest.raises(ValueError):
            Chunk(0, 1, 0.2, 1.2)

    def test_full_shard(self):
        chunk = Chunk(0, 1, 0.0, 1.0)
        assert chunk.fraction == 1.0


class TestLinkSendOp:
    def test_step_must_be_positive(self):
        with pytest.raises(ValueError):
            LinkSendOp(chunk=Chunk(0, 1, 0.0, 1.0), src=0, dst=1, step=0)

    def test_src_dst_must_differ(self):
        with pytest.raises(ValueError):
            LinkSendOp(chunk=Chunk(0, 1, 0.0, 1.0), src=2, dst=2, step=1)


class TestLinkSchedule:
    def _schedule(self):
        topo = ring(3)
        ops = [
            LinkSendOp(Chunk(0, 1, 0.0, 1.0), 0, 1, 1),
            LinkSendOp(Chunk(0, 2, 0.0, 1.0), 0, 1, 1),
            LinkSendOp(Chunk(0, 2, 0.0, 1.0), 1, 2, 2),
            LinkSendOp(Chunk(1, 2, 0.0, 1.0), 1, 2, 1),
            LinkSendOp(Chunk(1, 0, 0.0, 1.0), 1, 2, 2),
            LinkSendOp(Chunk(1, 0, 0.0, 1.0), 2, 0, 3),
            LinkSendOp(Chunk(2, 0, 0.0, 1.0), 2, 0, 1),
            LinkSendOp(Chunk(2, 1, 0.0, 1.0), 2, 0, 2),
            LinkSendOp(Chunk(2, 1, 0.0, 1.0), 0, 1, 3),
        ]
        return LinkSchedule(topology=topo, num_steps=3, operations=ops)

    def test_ops_at_step(self):
        sched = self._schedule()
        assert len(sched.ops_at_step(1)) == 4
        assert len(sched.ops_at_step(3)) == 2

    def test_ops_by_link(self):
        sched = self._schedule()
        grouped = sched.ops_by_link(1)
        assert len(grouped[(0, 1)]) == 2

    def test_link_bytes(self):
        sched = self._schedule()
        per_link = sched.link_bytes(1, shard_bytes=100.0)
        assert per_link[(0, 1)] == pytest.approx(200.0)
        assert per_link[(2, 0)] == pytest.approx(100.0)

    def test_total_bytes(self):
        sched = self._schedule()
        assert sched.total_bytes(10.0) == pytest.approx(90.0)

    def test_validate_links_rejects_missing_edge(self):
        topo = ring(3)
        bad = LinkSchedule(topology=topo, num_steps=1, operations=[
            LinkSendOp(Chunk(0, 2, 0.0, 1.0), 0, 2, 1)])
        with pytest.raises(ValueError, match="non-existent link"):
            bad.validate_links()

    def test_validate_links_rejects_step_overflow(self):
        topo = ring(3)
        bad = LinkSchedule(topology=topo, num_steps=1, operations=[
            LinkSendOp(Chunk(0, 1, 0.0, 1.0), 0, 1, 5)])
        with pytest.raises(ValueError, match="step range"):
            bad.validate_links()


class TestRoutedSchedule:
    def _schedule(self):
        topo = hypercube(2)
        assignments = [
            RouteAssignment(Chunk(0, 3, 0.0, 0.5), route=(0, 1, 3), layer=0),
            RouteAssignment(Chunk(0, 3, 0.5, 1.0), route=(0, 2, 3), layer=1),
        ]
        return RoutedSchedule(topology=topo, assignments=assignments)

    def test_route_endpoint_validation(self):
        with pytest.raises(ValueError, match="endpoints"):
            RouteAssignment(Chunk(0, 3, 0.0, 1.0), route=(0, 1, 2))
        with pytest.raises(ValueError):
            RouteAssignment(Chunk(0, 3, 0.0, 1.0), route=(0,))

    def test_routes_for(self):
        sched = self._schedule()
        assert len(sched.routes_for(0, 3)) == 2
        assert sched.routes_for(1, 2) == []

    def test_link_bytes(self):
        sched = self._schedule()
        per_link = sched.link_bytes(shard_bytes=100.0)
        assert per_link[(0, 1)] == pytest.approx(50.0)
        assert per_link[(2, 3)] == pytest.approx(50.0)

    def test_num_layers(self):
        assert self._schedule().num_layers() == 2
        assert RoutedSchedule(topology=hypercube(2)).num_layers() == 0

    def test_validate_links(self):
        topo = hypercube(2)
        bad = RoutedSchedule(topology=topo, assignments=[
            RouteAssignment(Chunk(0, 3, 0.0, 1.0), route=(0, 3))])
        with pytest.raises(ValueError, match="non-existent link"):
            bad.validate_links()
