"""Tests for flow data structures and hygiene utilities (repro.core.flow)."""

import pytest

from repro.core.flow import (
    FlowSolution,
    WeightedPath,
    conservation_violation,
    flow_to_paths,
    max_link_utilization,
    repair_conservation,
)
from repro.topology import ring, Topology


class TestWeightedPath:
    def test_edges_and_endpoints(self):
        p = WeightedPath(nodes=(0, 2, 3), weight=0.5)
        assert p.source == 0
        assert p.destination == 3
        assert p.edges == ((0, 2), (2, 3))
        assert len(p) == 2


class TestFlowToPaths:
    def test_single_path_decomposition(self):
        flow = {(0, 1): 0.5, (1, 2): 0.5}
        paths = flow_to_paths(flow, 0, 2)
        assert len(paths) == 1
        assert paths[0].nodes == (0, 1, 2)
        assert paths[0].weight == pytest.approx(0.5)

    def test_two_parallel_paths(self):
        flow = {(0, 1): 0.3, (1, 3): 0.3, (0, 2): 0.7, (2, 3): 0.7}
        paths = flow_to_paths(flow, 0, 3)
        weights = sorted(p.weight for p in paths)
        assert weights == pytest.approx([0.3, 0.7])
        assert sum(p.weight for p in paths) == pytest.approx(1.0)

    def test_widest_path_extracted_first(self):
        flow = {(0, 1): 0.9, (1, 3): 0.9, (0, 2): 0.1, (2, 3): 0.1}
        paths = flow_to_paths(flow, 0, 3)
        assert paths[0].weight == pytest.approx(0.9)

    def test_cycle_flow_ignored(self):
        # A circulation not reaching the destination must not produce paths.
        flow = {(0, 1): 1.0, (1, 2): 1.0, (1, 3): 0.5, (3, 1): 0.5}
        paths = flow_to_paths(flow, 0, 2)
        assert sum(p.weight for p in paths) == pytest.approx(1.0)
        for p in paths:
            assert p.nodes == (0, 1, 2)

    def test_no_path_returns_empty(self):
        assert flow_to_paths({(0, 1): 1.0}, 0, 5) == [] or \
               sum(p.weight for p in flow_to_paths({(0, 1): 1.0}, 0, 5)) == 0.0

    def test_conservation_of_split_and_merge(self):
        # Diamond: 0->1->3, 0->2->3 then 3->4.
        flow = {(0, 1): 0.4, (0, 2): 0.6, (1, 3): 0.4, (2, 3): 0.6, (3, 4): 1.0}
        paths = flow_to_paths(flow, 0, 4)
        assert sum(p.weight for p in paths) == pytest.approx(1.0)
        for p in paths:
            assert p.source == 0 and p.destination == 4


class TestConservationViolation:
    def test_balanced_flow_has_no_violation(self):
        flow = {(0, 1): 1.0, (1, 2): 1.0}
        assert conservation_violation(flow, 0, 2) == pytest.approx(0.0)

    def test_excess_at_intermediate_detected(self):
        flow = {(0, 1): 1.0, (1, 2): 0.25}
        assert conservation_violation(flow, 0, 2) == pytest.approx(0.75)

    def test_source_and_destination_excluded(self):
        flow = {(0, 1): 2.0, (1, 2): 2.0}
        assert conservation_violation(flow, 0, 2) == 0.0


class TestFlowSolution:
    def _make(self, topo):
        flows = {}
        for s, d in topo.commodities():
            # route everything on one shortest path: ring -> the unique path.
            path = list(range(s, d + 1)) if d > s else list(range(s, topo.num_nodes)) + list(range(0, d + 1))
            per = {}
            for u, v in zip(path[:-1], path[1:]):
                per[(u, v)] = 0.1
            flows[(s, d)] = per
        return FlowSolution(concurrent_flow=0.1, flows=flows, topology=topo)

    def test_link_loads_and_utilization(self):
        topo = ring(4)
        sol = self._make(topo)
        loads = sol.link_loads()
        assert set(loads.keys()) == set(topo.edges)
        # Each link is used by commodities at distance covering it: 1+2+3 = 6 -> 0.6.
        assert max(loads.values()) == pytest.approx(0.6)
        assert max_link_utilization(sol) == pytest.approx(0.6)

    def test_delivered_and_all_to_all_time(self):
        topo = ring(4)
        sol = self._make(topo)
        assert sol.delivered(0, 2) == pytest.approx(0.1)
        assert sol.min_delivered() == pytest.approx(0.1)
        assert sol.all_to_all_time() == pytest.approx(10.0)

    def test_all_to_all_time_infinite_for_zero_flow(self):
        topo = ring(3)
        sol = FlowSolution(concurrent_flow=0.0, flows={}, topology=topo)
        assert sol.all_to_all_time() == float("inf")


class TestRepairConservation:
    def test_repair_removes_excess_injection(self):
        topo = Topology.from_edges(3, [(0, 1), (1, 2), (0, 2)], cap=1.0)
        # Commodity (0,2) with excess flow near the source (allowed by the
        # inequality-form conservation constraint).
        flows = {(0, 2): {(0, 1): 0.7, (1, 2): 0.3, (0, 2): 0.3},
                 (0, 1): {(0, 1): 0.3},
                 (1, 2): {(1, 2): 0.3},
                 (2, 0): {},
                 (2, 1): {},
                 (1, 0): {}}
        # Make the remaining commodities routable (zero flow is fine for repair).
        sol = FlowSolution(concurrent_flow=0.3, flows=flows, topology=topo)
        repaired = repair_conservation(sol)
        per = repaired.commodity_flow(0, 2)
        assert conservation_violation(per, 0, 2) < 1e-9
        delivered = repaired.delivered(0, 2)
        assert delivered == pytest.approx(0.3, abs=1e-9)

    def test_repair_preserves_value_on_clean_solution(self, cube3_link_mcf):
        repaired = repair_conservation(cube3_link_mcf)
        assert repaired.concurrent_flow == cube3_link_mcf.concurrent_flow
        for s, d in cube3_link_mcf.topology.commodities():
            assert repaired.delivered(s, d) == pytest.approx(
                cube3_link_mcf.concurrent_flow, abs=1e-6)
