"""Tests for the baseline schemes: ILP, FPTAS, native, TACCL/SCCL surrogates."""

import pytest

from repro.baselines import (
    SynthesisTimeout,
    direct_pairwise_link_schedule,
    fptas_max_concurrent_flow,
    ilp_disjoint_schedule,
    ilp_shortest_schedule,
    native_alltoall_schedule,
    sccl_like_schedule,
    solve_ilp_path_selection,
    taccl_like_schedule,
)
from repro.core import solve_decomposed_mcf
from repro.paths import edge_disjoint_path_sets
from repro.schedule import validate_link_schedule
from repro.topology import bidirectional_ring, complete, hypercube, ring


class TestILP:
    def test_ilp_disjoint_optimal_on_hypercube(self, cube3):
        schedule = ilp_disjoint_schedule(cube3)
        # Single-path min-max-load on the 3-cube achieves load 4 (= 1/F).
        assert schedule.meta["max_load"] == pytest.approx(4.0, abs=1e-6)
        assert schedule.all_to_all_time() == pytest.approx(4.0, rel=1e-6)

    def test_ilp_single_path_per_commodity(self, cube3):
        schedule = ilp_disjoint_schedule(cube3)
        for c in cube3.commodities():
            assert len(schedule.paths[c]) == 1
            assert schedule.paths[c][0].weight == pytest.approx(1.0)

    def test_ilp_not_bandwidth_optimal_on_bipartite(self, bipartite44):
        # §5.2: single-path ILP cannot reach the MCF optimum on K4,4.
        optimal_time = 1.0 / solve_decomposed_mcf(bipartite44).concurrent_flow
        ilp_time = ilp_disjoint_schedule(bipartite44).all_to_all_time()
        assert ilp_time > optimal_time + 1e-6

    def test_ilp_shortest_variant(self, cube3):
        schedule = ilp_shortest_schedule(cube3)
        assert schedule.meta["method"] == "ilp-shortest"
        assert schedule.all_to_all_time() <= 6.0

    def test_ilp_with_gap_tolerance(self, torus33):
        schedule = ilp_disjoint_schedule(torus33, mip_rel_gap=0.1, time_limit=60)
        optimal_time = 1.0 / solve_decomposed_mcf(torus33).concurrent_flow
        assert schedule.all_to_all_time() <= 1.25 * optimal_time

    def test_missing_candidate_rejected(self, complete4):
        path_sets = edge_disjoint_path_sets(complete4)
        del path_sets[(1, 2)]
        with pytest.raises(ValueError):
            solve_ilp_path_selection(complete4, path_sets)


class TestFPTAS:
    def test_ring_converges_to_optimum(self):
        topo = ring(6)
        sol = fptas_max_concurrent_flow(topo, epsilon=0.05)
        assert sol.concurrent_flow == pytest.approx(1.0 / 15.0, rel=0.05)
        assert sol.concurrent_flow <= 1.0 / 15.0 + 1e-9

    def test_hypercube_within_epsilon(self, cube3):
        sol = fptas_max_concurrent_flow(cube3, epsilon=0.05)
        assert 0.25 * 0.85 <= sol.concurrent_flow <= 0.25 + 1e-9

    def test_feasibility_of_returned_flow(self, cube3):
        sol = fptas_max_concurrent_flow(cube3, epsilon=0.1)
        caps = cube3.capacities()
        for e, load in sol.link_loads().items():
            assert load <= caps[e] + 1e-6

    def test_smaller_epsilon_takes_more_phases(self, cube3):
        coarse = fptas_max_concurrent_flow(cube3, epsilon=0.3)
        fine = fptas_max_concurrent_flow(cube3, epsilon=0.05)
        assert fine.meta["phases"] > coarse.meta["phases"]
        assert fine.concurrent_flow >= coarse.concurrent_flow - 1e-9

    def test_invalid_epsilon(self, cube3):
        with pytest.raises(ValueError):
            fptas_max_concurrent_flow(cube3, epsilon=0.0)
        with pytest.raises(ValueError):
            fptas_max_concurrent_flow(cube3, epsilon=1.5)


class TestNativeBaseline:
    def test_native_schedule_single_shortest_path(self, bipartite44):
        schedule = native_alltoall_schedule(bipartite44)
        for c in bipartite44.commodities():
            assert len(schedule.paths[c]) == 1
        # Strictly worse than the MCF optimum on K4,4 (Fig. 4 left, up to 2.3x).
        optimal_time = 1.0 / solve_decomposed_mcf(bipartite44).concurrent_flow
        assert schedule.all_to_all_time() >= 1.5 * optimal_time

    def test_direct_pairwise_link_schedule_valid(self, cube3):
        schedule = direct_pairwise_link_schedule(cube3)
        validate_link_schedule(schedule)
        assert schedule.num_steps == cube3.diameter()


class TestTACCLSurrogate:
    def test_valid_schedule_on_hypercube(self, cube3):
        schedule = taccl_like_schedule(cube3)
        validate_link_schedule(schedule)
        assert schedule.meta["method"] == "taccl-like"

    def test_underperforms_tsmcf(self, cube3, cube3_tsmcf):
        # Fig. 3: TACCL trails tsMCF; the whole-chunk surrogate needs more
        # step-time than the fractional optimum (4.0 on the 3-cube).
        schedule = taccl_like_schedule(cube3)
        assert schedule.num_steps >= cube3_tsmcf.total_utilization + 1 - 1e-9

    def test_works_on_expander(self, genkautz_3_10):
        schedule = taccl_like_schedule(genkautz_3_10)
        validate_link_schedule(schedule)

    def test_chunked_variant(self, cube3):
        schedule = taccl_like_schedule(cube3, chunks_per_shard=2)
        validate_link_schedule(schedule)
        assert schedule.meta["chunks_per_shard"] == 2

    def test_time_budget_respected(self, genkautz_4_16):
        import time

        t0 = time.perf_counter()
        schedule = taccl_like_schedule(genkautz_4_16, num_sketches=64, time_budget=0.5)
        elapsed = time.perf_counter() - t0
        validate_link_schedule(schedule)
        assert elapsed < 5.0

    def test_invalid_chunks(self, cube3):
        with pytest.raises(ValueError):
            taccl_like_schedule(cube3, chunks_per_shard=0)


class TestSCCLSurrogate:
    def test_complete_graph_one_step(self):
        schedule = sccl_like_schedule(complete(4), time_budget=5.0)
        validate_link_schedule(schedule)
        assert schedule.num_steps == 1

    def test_small_ring_two_steps(self):
        schedule = sccl_like_schedule(bidirectional_ring(4), time_budget=5.0)
        validate_link_schedule(schedule)
        assert schedule.num_steps == 2

    def test_times_out_beyond_tiny_scale(self):
        # The defining behaviour from Fig. 7: exhaustive synthesis does not scale.
        with pytest.raises(SynthesisTimeout):
            sccl_like_schedule(hypercube(3), time_budget=0.5)
