"""Tests for the work-stealing multiprocess sweep executor.

Covers the work-stealing queue, deterministic shard merge, the shared
artifact plane (both backends, including cleanup after crashes), and the
headline executor guarantees: worker output canonically identical to the
serial and threaded paths, and a killed worker losing nothing that a
``resume=True`` re-run cannot finish without duplicate records.
"""

import dataclasses
import json
import os
import threading
import types

import pytest

from repro.analysis import format_engine_footer
from repro.experiments import (
    ExecutorStats,
    SharedArtifactPlane,
    SweepGrid,
    completed_records,
    last_executor_stats,
    load_results,
    merge_shards,
    run_sweep,
    run_sweep_workers,
    scenario_schema_version,
    sweep_stats,
)
from repro.experiments.executor import (
    VOLATILE_RECORD_FIELDS,
    claim_index,
    hot_stage_keys,
    partition_ranges,
    shard_dir_for,
)


def _grid12() -> SweepGrid:
    """12 fast scenarios: 3 topologies x 2 schemes x 2 overlap settings."""
    return SweepGrid(
        base={"fabric": "hpc", "buffers": [2 ** 20], "max_denominator": 16},
        axes={"topology": ["hypercube:dim=2", "bipartite:left=3,right=3",
                           "torus:dims=3x3"],
              "scheme": ["ewsp", "sssp"],
              "overlap": ["1", "2"]})


def _canonical(path):
    """Records with volatile execution accounting dropped, sorted by hash."""
    records = []
    for rec in load_results(path):
        rec = {k: v for k, v in rec.items() if k not in VOLATILE_RECORD_FIELDS}
        records.append(rec)
    return sorted(records, key=lambda r: str(r.get("key", "")))


def _write_shard(shard_dir, name, records, torn=False):
    os.makedirs(shard_dir, exist_ok=True)
    path = os.path.join(shard_dir, name)
    with open(path, "w") as fh:
        for rec in records:
            fh.write(json.dumps(rec, sort_keys=True) + "\n")
        if torn:
            fh.write('{"key": "torn-')
    return path


def _rec(key, status="ok", through="simulate", **extra):
    rec = {"key": key, "status": status, "through": through,
           "schema_version": scenario_schema_version(),
           "scenario": {}, "metrics": {"f": 1.0}}
    rec.update(extra)
    return rec


class TestWorkStealingQueue:
    def test_partition_ranges_cover_exactly(self):
        for items, workers in [(12, 2), (12, 5), (3, 4), (0, 3), (7, 1)]:
            ranges = partition_ranges(items, workers)
            assert len(ranges) == workers
            flat = [i for lo, hi in ranges for i in range(lo, hi)]
            assert flat == list(range(items))

    def _queue(self, ranges_flat):
        return (list(ranges_flat), threading.Lock(),
                types.SimpleNamespace(value=0))

    def test_owner_pops_head_before_stealing(self):
        ranges, lock, steals = self._queue([0, 2, 2, 4])
        assert claim_index(0, ranges, lock, steals) == (0, False)
        assert claim_index(0, ranges, lock, steals) == (1, False)
        assert steals.value == 0

    def test_dry_worker_steals_from_tail_of_busiest(self):
        # Worker 0 is dry; worker 1 has one item, worker 2 has three.
        ranges, lock, steals = self._queue([0, 0, 0, 1, 1, 4])
        index, stolen = claim_index(0, ranges, lock, steals)
        assert (index, stolen) == (3, True)  # tail of the busiest victim
        assert steals.value == 1
        assert ranges[5] == 3  # victim's tail shrank; its head is untouched

    def test_drained_queue_returns_none(self):
        ranges, lock, steals = self._queue([2, 2, 4, 4])
        assert claim_index(0, ranges, lock, steals) is None
        assert claim_index(1, ranges, lock, steals) is None

    def test_every_index_claimed_exactly_once(self):
        ranges, lock, steals = self._queue(
            [lo for pair in partition_ranges(10, 3) for lo in pair])
        claimed = []
        worker = 0
        while True:
            claim = claim_index(worker, ranges, lock, steals)
            if claim is None:
                break
            claimed.append(claim[0])
            worker = (worker + 1) % 3
        assert sorted(claimed) == list(range(10))


class TestMergeShards:
    def test_merge_is_deterministic_and_idempotent(self, tmp_path):
        out = str(tmp_path / "sweep.jsonl")
        shards = shard_dir_for(out)
        _write_shard(shards, "worker-0.jsonl", [_rec("b"), _rec("a")])
        _write_shard(shards, "worker-1.jsonl", [_rec("c")], torn=True)
        assert merge_shards(out, shards) == 3
        first = open(out).read()
        assert merge_shards(out, shards) == 3  # existing output re-merged
        assert open(out).read() == first
        keys = [rec["key"] for rec in load_results(out)]
        assert keys == ["a", "b", "c"]  # hash-sorted; torn line skipped

    def test_merge_independent_of_shard_assignment(self, tmp_path):
        records = [_rec(k) for k in ("d", "a", "c", "b")]
        outputs = []
        for split in [(1, "x"), (2, "y"), (4, "z")]:
            n, tag = split
            out = str(tmp_path / f"sweep-{tag}.jsonl")
            shards = shard_dir_for(out)
            for i in range(n):
                _write_shard(shards, f"worker-{i}.jsonl", records[i::n])
            merge_shards(out, shards)
            outputs.append(open(out).read())
        assert outputs[0] == outputs[1] == outputs[2]

    def test_ok_beats_error_and_deeper_through_wins(self, tmp_path):
        out = str(tmp_path / "sweep.jsonl")
        shards = shard_dir_for(out)
        _write_shard(shards, "worker-0.jsonl", [
            _rec("a", status="error", error="boom"),
            _rec("b", through="synthesize", marker="shallow"),
        ])
        _write_shard(shards, "worker-1.jsonl", [
            _rec("a", marker="good"),
            _rec("b", through="simulate", marker="deep"),
        ])
        merge_shards(out, shards)
        by_key = {rec["key"]: rec for rec in load_results(out)}
        assert by_key["a"]["status"] == "ok"
        assert by_key["b"]["marker"] == "deep"

    def test_unkeyed_records_all_kept(self, tmp_path):
        out = str(tmp_path / "sweep.jsonl")
        shards = shard_dir_for(out)
        _write_shard(shards, "worker-0.jsonl",
                     [_rec("", status="error", error="x"),
                      _rec("", status="error", error="y"), _rec("a")])
        assert merge_shards(out, shards) == 3


class TestSharedArtifactPlane:
    @pytest.mark.parametrize("backend", ["shm", "mmap"])
    def test_publish_get_roundtrip(self, backend, tmp_path):
        plane = SharedArtifactPlane(backend=backend,
                                    root=str(tmp_path / "plane"),
                                    publishable={"hot"})
        try:
            assert plane.get("hot") is None  # miss before publish
            assert plane.publish("hot", b"payload-bytes")
            assert plane.get("hot") == b"payload-bytes"
            assert plane.counters() == {"hits": 1, "misses": 1, "publishes": 1}
        finally:
            plane.cleanup()

    @pytest.mark.parametrize("backend", ["shm", "mmap"])
    def test_first_writer_wins_and_cold_keys_ignored(self, backend, tmp_path):
        plane = SharedArtifactPlane(backend=backend,
                                    root=str(tmp_path / "plane"),
                                    publishable={"hot"})
        try:
            assert plane.publish("hot", b"first")
            assert not plane.publish("hot", b"second")
            assert plane.get("hot") == b"first"
            assert not plane.publish("cold", b"ignored")
            assert plane.get("cold") is None
            assert plane.counters()["misses"] == 0  # cold keys don't count
        finally:
            plane.cleanup()

    @pytest.mark.parametrize("backend", ["shm", "mmap"])
    def test_cleanup_removes_segments_and_is_idempotent(self, backend, tmp_path):
        plane = SharedArtifactPlane(backend=backend,
                                    root=str(tmp_path / "plane"),
                                    publishable={"hot", "never-published"})
        plane.publish("hot", b"payload")
        plane.cleanup()
        assert plane._read("hot") is None
        if backend == "mmap":
            assert not os.path.isdir(plane.root)
        plane.cleanup()  # second cleanup is a no-op, not an error

    def test_cleanup_after_publisher_crash(self, tmp_path):
        # The publisher never runs cleanup (simulating SIGKILL); a second
        # plane object with the same run id — what the parent holds — must
        # find the orphan segment by its deterministic name and remove it.
        writer = SharedArtifactPlane(run_id="crashtest", backend="shm",
                                     publishable={"hot"})
        writer.publish("hot", b"orphan")
        del writer
        parent = SharedArtifactPlane(run_id="crashtest", backend="shm",
                                     publishable={"hot"})
        assert parent._read("hot") == b"orphan"
        parent.cleanup()
        assert parent._read("hot") is None

    def test_hot_stage_keys_require_two_scenarios(self):
        grid = SweepGrid(base={"topology": "hypercube:dim=2",
                               "scheme": "ewsp", "buffers": [2 ** 20]},
                         axes={"overlap": ["1", "2"]})
        hot = hot_stage_keys(grid.scenarios())
        # synthesize/lower/validate keys ignore overlap -> shared (hot);
        # the simulate keys differ per overlap -> cold.
        scenario = grid.scenarios()[0]
        assert scenario.stage_key("synthesize") in hot
        assert scenario.stage_key("simulate") not in hot


class TestRunSweepWorkers:
    def test_workers_match_serial_and_threads_canonically(self, tmp_path):
        scenarios = _grid12().scenarios()
        serial = str(tmp_path / "serial.jsonl")
        threaded = str(tmp_path / "threads.jsonl")
        sharded = str(tmp_path / "workers.jsonl")
        run_sweep(scenarios, out_path=serial)
        run_sweep(scenarios, out_path=threaded, jobs=2)
        results, stats = run_sweep_workers(scenarios, out_path=sharded,
                                           workers=2)
        assert _canonical(serial) == _canonical(threaded) == _canonical(sharded)
        assert len(results) == 12
        assert [r.scenario for r in results] == scenarios  # input order kept
        assert all(r.status == "ok" for r in results)
        assert stats.workers == 2 and sum(stats.completed) == 12
        assert not os.path.isdir(shard_dir_for(sharded))  # shards merged away
        assert last_executor_stats() is stats

    def test_run_sweep_workers_arg_delegates(self, tmp_path):
        scenarios = _grid12().scenarios()[:2]
        out = str(tmp_path / "via-run-sweep.jsonl")
        results = run_sweep(scenarios, out_path=out, workers=2)
        assert [r.status for r in results] == ["ok", "ok"]
        assert last_executor_stats().workers == 2

    def test_survivor_steals_dead_workers_slice(self, tmp_path):
        # Killing one of two workers must not lose its unclaimed scenarios:
        # work stealing doubles as crash redistribution, so the survivor
        # drains the whole queue even though the sweep still reports failure.
        scenarios = _grid12().scenarios()
        out = str(tmp_path / "crash.jsonl")
        with pytest.raises(RuntimeError, match="resume=True"):
            run_sweep_workers(scenarios, out_path=out, workers=2,
                              fault_injection={"worker": 0, "after": 2})
        stats = last_executor_stats()
        assert stats.failed_workers == [0]
        assert stats.completed[0] == 2  # flushed before the kill
        keys = [rec["key"] for rec in load_results(out)]
        assert len(keys) == 12 and len(set(keys)) == 12
        assert os.path.isdir(shard_dir_for(out))  # shards kept for forensics

        # The crash left a torn trailing line in worker 0's shard; resume
        # heals it, confirms nothing is missing and touches no scenario.
        results, stats = run_sweep_workers(scenarios, out_path=out, workers=2,
                                           resume=True)
        assert stats.failed_workers == [] and sum(stats.completed) == 0
        assert all(r.resumed and r.status == "ok" for r in results)

    def test_killed_worker_then_resume_completes_without_duplicates(
            self, tmp_path):
        # With a single worker there is no survivor to steal the rest, so the
        # crash really leaves the sweep incomplete — the case resume exists for.
        scenarios = _grid12().scenarios()
        out = str(tmp_path / "crash.jsonl")
        with pytest.raises(RuntimeError, match="resume=True"):
            run_sweep_workers(scenarios, out_path=out, workers=1,
                              fault_injection={"worker": 0, "after": 2})
        partial = load_results(out)
        assert 0 < len(partial) < 12  # merged what was flushed, nothing more

        results, stats = run_sweep_workers(scenarios, out_path=out, workers=2,
                                           resume=True)
        assert stats.failed_workers == []
        final = load_results(out)
        keys = [rec["key"] for rec in final]
        assert len(final) == 12
        assert len(set(keys)) == 12  # zero duplicate records after merge
        assert keys == sorted(keys)
        assert sum(1 for r in results if r.resumed) == len(partial)
        assert all(r.status == "ok" for r in results)

    def test_resume_is_a_no_op_when_complete(self, tmp_path):
        scenarios = _grid12().scenarios()[:4]
        out = str(tmp_path / "done.jsonl")
        run_sweep_workers(scenarios, out_path=out, workers=2)
        before = open(out).read()
        results, stats = run_sweep_workers(scenarios, out_path=out, workers=2,
                                           resume=True)
        assert open(out).read() == before
        assert sum(stats.completed) == 0
        assert all(r.resumed for r in results)

    def test_error_scenarios_recorded_not_raised(self, tmp_path):
        good = _grid12().scenarios()[0]
        bad = dataclasses.replace(good, scheme="no-such-scheme")
        results, _stats = run_sweep_workers(
            [good, bad], out_path=str(tmp_path / "err.jsonl"), workers=2)
        assert [r.status for r in results] == ["ok", "error"]
        assert "no-such-scheme" in (results[1].error or "")


class TestExecutorStatsSurface:
    def test_sweep_stats_includes_executor_counters(self, tmp_path):
        scenarios = _grid12().scenarios()[:4]
        results, stats = run_sweep_workers(
            scenarios, out_path=str(tmp_path / "s.jsonl"), workers=2)
        totals = sweep_stats(results, executor=stats)
        assert totals["workers"] == 2
        assert sum(totals["per_worker_completed"]) == 4
        assert totals["scenarios_per_sec"] > 0
        assert {"steals", "shared_hits", "shared_misses"} <= set(totals)

    def test_footer_renders_executor_section(self):
        stats = ExecutorStats(workers=2, completed=[3, 1], steals=1,
                              shared_hits=5, shared_misses=2,
                              elapsed_seconds=2.0)
        line = format_engine_footer(
            {"hits": 0, "misses": 0, "disk_hits": 0, "backend": "x"},
            {"hits": 0, "misses": 0}, executor_stats=stats.to_dict())
        assert "exec: 2 workers (3/1 per worker)" in line
        assert "1 steals" in line
        assert "shared-artifacts 5 hits / 2 misses" in line
        assert "2.00 scen/s" in line


class TestSharedReaderHelpers:
    def test_load_results_caches_by_signature(self, tmp_path):
        path = str(tmp_path / "r.jsonl")
        with open(path, "w") as fh:
            fh.write(json.dumps(_rec("a")) + "\n")
        first = load_results(path)
        assert load_results(path) == first  # served from cache
        with open(path, "a") as fh:
            fh.write(json.dumps(_rec("b")) + "\n")
        assert len(load_results(path)) == 2  # size change invalidates

    def test_load_results_returns_fresh_lists(self, tmp_path):
        path = str(tmp_path / "r.jsonl")
        with open(path, "w") as fh:
            fh.write(json.dumps(_rec("a")) + "\n")
        load_results(path).clear()  # caller mutation must not poison cache
        assert len(load_results(path)) == 1

    def test_completed_records_dedupes_and_filters(self, tmp_path):
        a = _write_shard(str(tmp_path), "worker-0.jsonl", [
            _rec("x", through="synthesize"),
            _rec("y", status="error", error="boom"),
        ])
        b = _write_shard(str(tmp_path), "worker-1.jsonl", [
            _rec("x", through="simulate"), _rec("y"),
        ])
        done = completed_records([a, b], through="simulate")
        assert done["x"]["through"] == "simulate"  # shallow run filtered out
        assert done["y"]["status"] == "ok"  # ok displaces the error record
        with_errors = completed_records([a], through="simulate", ok_only=False)
        assert with_errors["y"]["status"] == "error"
