"""Tests for the Topology wrapper (repro.topology.base)."""

import networkx as nx
import pytest

from repro.topology import Topology, ring, complete, hypercube


class TestConstruction:
    def test_from_edges_directed(self):
        topo = Topology.from_edges(3, [(0, 1), (1, 2), (2, 0)], name="tri")
        assert topo.num_nodes == 3
        assert topo.num_edges == 3
        assert topo.has_edge(0, 1)
        assert not topo.has_edge(1, 0)

    def test_from_edges_bidirectional(self):
        topo = Topology.from_edges(3, [(0, 1), (1, 2)], bidirectional=True)
        assert topo.num_edges == 4
        assert topo.has_edge(1, 0)
        assert topo.has_edge(2, 1)

    def test_from_undirected_relabels_nodes(self):
        g = nx.Graph()
        g.add_edges_from([("a", "b"), ("b", "c"), ("c", "a")])
        topo = Topology.from_undirected(g)
        assert topo.nodes == [0, 1, 2]
        assert topo.num_edges == 6

    def test_rejects_non_contiguous_nodes(self):
        g = nx.DiGraph()
        g.add_edge(0, 2)
        g.add_edge(2, 0)
        with pytest.raises(ValueError, match="contiguous"):
            Topology(g)

    def test_rejects_self_loops(self):
        g = nx.DiGraph()
        g.add_nodes_from([0, 1])
        g.add_edge(0, 0)
        g.add_edge(0, 1)
        with pytest.raises(ValueError, match="self loops"):
            Topology(g)

    def test_rejects_nonpositive_capacity(self):
        g = nx.DiGraph()
        g.add_nodes_from([0, 1])
        g.add_edge(0, 1, cap=0.0)
        with pytest.raises(ValueError, match="capacity"):
            Topology(g)

    def test_rejects_non_digraph(self):
        with pytest.raises(TypeError):
            Topology(nx.Graph())

    def test_default_capacity_applied(self):
        g = nx.DiGraph()
        g.add_nodes_from([0, 1])
        g.add_edge(0, 1)
        topo = Topology(g, default_cap=2.5)
        assert topo.capacity(0, 1) == 2.5


class TestAccessors:
    def test_degree_regular(self):
        assert hypercube(3).degree() == 3

    def test_degree_raises_on_irregular(self):
        topo = Topology.from_edges(3, [(0, 1), (0, 2), (1, 0), (2, 0), (1, 2), (2, 1)])
        topo2 = topo.remove_edges([(1, 2)])
        with pytest.raises(ValueError, match="not out-regular"):
            topo2.degree()

    def test_out_in_edges_sorted(self):
        topo = complete(4)
        assert topo.out_edges(2) == [(2, 0), (2, 1), (2, 3)]
        assert topo.in_edges(2) == [(0, 2), (1, 2), (3, 2)]

    def test_commodities_count(self):
        topo = complete(5)
        assert len(list(topo.commodities())) == 5 * 4

    def test_is_bidirectional(self):
        assert hypercube(2).is_bidirectional()
        assert not ring(4).is_bidirectional()

    def test_is_regular(self):
        assert ring(5).is_regular()
        assert hypercube(3).is_regular()

    def test_diameter(self):
        assert ring(5).diameter() == 4
        assert hypercube(3).diameter() == 3
        assert complete(6).diameter() == 1

    def test_diameter_raises_when_disconnected(self):
        topo = Topology.from_edges(3, [(0, 1), (1, 0), (1, 2), (2, 1)])
        broken = Topology.from_edges(3, [(0, 1), (1, 0)])
        with pytest.raises(ValueError):
            broken.diameter()
        assert topo.diameter() == 2

    def test_capacities_mapping(self):
        topo = ring(4, cap=3.0)
        caps = topo.capacities()
        assert len(caps) == 4
        assert all(v == 3.0 for v in caps.values())


class TestDerivedTopologies:
    def test_copy_is_independent(self):
        topo = ring(4)
        clone = topo.copy(name="clone")
        clone.graph.remove_edge(0, 1)
        assert topo.has_edge(0, 1)
        assert clone.name == "clone"

    def test_with_capacity(self):
        topo = ring(4).with_capacity(7.0)
        assert all(v == 7.0 for v in topo.capacities().values())

    def test_remove_edges_keeps_connectivity(self):
        topo = complete(4)
        reduced = topo.remove_edges([(0, 1)])
        assert not reduced.has_edge(0, 1)
        assert reduced.is_strongly_connected()

    def test_remove_edges_rejects_disconnection(self):
        topo = ring(4)
        with pytest.raises(ValueError, match="disconnected"):
            topo.remove_edges([(0, 1)])

    def test_remove_nodes_relabels(self):
        topo = complete(5)
        reduced = topo.remove_nodes([2])
        assert reduced.num_nodes == 4
        assert reduced.nodes == [0, 1, 2, 3]
        assert reduced.is_strongly_connected()

    def test_remove_nodes_rejects_too_many(self):
        with pytest.raises(ValueError):
            complete(3).remove_nodes([0, 1])


class TestCanonicalHash:
    """The hash is the solve-engine cache key; it must be content-stable."""

    def test_construction_order_invariance(self):
        edges = [(0, 1), (1, 2), (2, 0), (0, 2)]
        forward = Topology.from_edges(3, edges)
        backward = Topology.from_edges(3, list(reversed(edges)))
        assert forward.canonical_hash() == backward.canonical_hash()

    def test_name_and_metadata_do_not_matter(self):
        a = ring(5)
        b = ring(5).copy(name="renamed")
        b.metadata["extra"] = "stuff"
        assert a.canonical_hash() == b.canonical_hash()

    def test_capacity_changes_hash(self):
        a = ring(4)
        b = ring(4).with_capacity(2.0)
        assert a.canonical_hash() != b.canonical_hash()

    def test_edge_set_changes_hash(self):
        a = complete(4)
        b = complete(4).remove_edges([(0, 1)])
        assert a.canonical_hash() != b.canonical_hash()

    def test_isolated_node_count_changes_hash(self):
        g1 = nx.DiGraph()
        g1.add_nodes_from(range(3))
        g1.add_edges_from([(0, 1), (1, 0), (1, 2), (2, 1), (2, 0), (0, 2)])
        small = Topology(g1)
        big = complete(4)
        assert small.canonical_hash() != big.canonical_hash()

    def test_hash_is_hex_digest(self):
        h = ring(4).canonical_hash()
        assert len(h) == 64
        assert int(h, 16) >= 0

    def test_stable_across_processes(self):
        # Regression guard: the hash feeds the on-disk cache, so it must not
        # depend on PYTHONHASHSEED or interpreter state.
        import os
        import pathlib
        import subprocess
        import sys

        src = str(pathlib.Path(__file__).resolve().parent.parent / "src")
        code = ("from repro.topology import ring;"
                "print(ring(6).canonical_hash())")
        env = dict(os.environ)
        env["PYTHONHASHSEED"] = "12345"
        env["PYTHONPATH"] = src
        out = subprocess.run([sys.executable, "-c", code],
                             capture_output=True, text=True, env=env)
        assert out.returncode == 0, out.stderr
        assert out.stdout.strip() == ring(6).canonical_hash()
