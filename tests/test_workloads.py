"""Tests for the application workloads (traffic, 3D FFT, DLRM, MoE)."""

import numpy as np
import pytest

from repro.baselines import native_alltoall_schedule
from repro.paths import sssp_schedule
from repro.schedule import chunk_path_schedule
from repro.simulator import cerio_hpc_fabric
from repro.workloads import (
    DLRMConfig,
    DistributedFFT3D,
    MoEConfig,
    demand_matrix_to_dict,
    permutation_traffic,
    simulate_dlrm_iteration,
    simulate_moe_layer,
    skewed_alltoall,
    token_routing_matrix,
    total_bytes_per_node,
    uniform_alltoall,
)
from repro.topology import torus_2d


class TestTrafficMatrices:
    def test_uniform_alltoall(self):
        mat = uniform_alltoall(4, bytes_per_pair=10.0)
        assert mat.shape == (4, 4)
        assert np.all(np.diag(mat) == 0)
        assert mat[0, 1] == 10.0
        assert total_bytes_per_node(mat) == 30.0

    def test_skewed_alltoall(self):
        mat = skewed_alltoall(8, bytes_per_pair=1.0, skew=3.0, hot_fraction=0.25, seed=1)
        assert np.all(np.diag(mat) == 0)
        assert mat.max() == 3.0
        assert mat[mat > 0].min() == 1.0
        # Exactly 2 hot columns out of 8.
        hot_cols = (mat.max(axis=0) == 3.0).sum()
        assert hot_cols == 2

    def test_skew_below_one_rejected(self):
        with pytest.raises(ValueError):
            skewed_alltoall(4, skew=0.5)

    def test_permutation_traffic(self):
        mat = permutation_traffic(6, seed=0)
        assert np.all(mat.sum(axis=1) == 1.0)
        assert np.all(mat.sum(axis=0) == 1.0)
        assert np.all(np.diag(mat) == 0)

    def test_demand_matrix_to_dict(self):
        mat = uniform_alltoall(3, 2.0)
        demands = demand_matrix_to_dict(mat)
        assert len(demands) == 6
        assert demands[(0, 1)] == 2.0

    def test_demand_matrix_must_be_square(self):
        with pytest.raises(ValueError):
            demand_matrix_to_dict(np.zeros((2, 3)))


class TestFFT3D:
    @pytest.fixture(scope="class")
    def torus9(self):
        return torus_2d(3)

    @pytest.fixture(scope="class")
    def mcf_schedule(self, torus9):
        from repro.core import solve_mcf_extract_paths

        return solve_mcf_extract_paths(torus9)

    def test_numerical_correctness(self, torus9, mcf_schedule):
        fft = DistributedFFT3D(torus9, grid_width=18, fabric=cerio_hpc_fabric())
        result = fft.run(mcf_schedule, seed=1)
        assert result.max_abs_error < 1e-8
        assert result.total_seconds > 0

    def test_grid_must_divide_by_ranks(self, torus9):
        with pytest.raises(ValueError, match="divisible"):
            DistributedFFT3D(torus9, grid_width=16)

    def test_buffer_size_accounting(self, torus9):
        fft = DistributedFFT3D(torus9, grid_width=9)
        # slab=1 plane of 9x9 complex128 = 1296 bytes per rank.
        assert fft.alltoall_buffer_bytes() == pytest.approx(9 * 9 * 16)

    def test_bands_sum_to_total(self, torus9, mcf_schedule):
        fft = DistributedFFT3D(torus9, grid_width=9)
        result = fft.run(mcf_schedule)
        assert sum(result.bands().values()) == pytest.approx(result.total_seconds)

    def test_faster_alltoall_gives_faster_fft(self, torus9, mcf_schedule):
        """Fig. 6 behaviour: the FFT speedup follows the all-to-all speedup."""
        fabric = cerio_hpc_fabric()
        fft = DistributedFFT3D(torus9, grid_width=18, fabric=fabric)
        mcf_result = fft.run(mcf_schedule, seed=0, verify=False)
        sssp_result = fft.run(sssp_schedule(torus9), seed=0, verify=False)
        assert mcf_result.alltoall_seconds <= sssp_result.alltoall_seconds + 1e-12

    def test_accepts_prechunked_routed_schedule(self, torus9, mcf_schedule):
        routed = chunk_path_schedule(mcf_schedule)
        fft = DistributedFFT3D(torus9, grid_width=9)
        result = fft.run(routed)
        assert result.max_abs_error < 1e-8

    def test_explicit_data_shape_checked(self, torus9, mcf_schedule):
        fft = DistributedFFT3D(torus9, grid_width=9)
        with pytest.raises(ValueError):
            fft.run(mcf_schedule, data=np.zeros((3, 3, 3), dtype=complex))


class TestDLRM:
    @pytest.fixture(scope="class")
    def torus9(self):
        return torus_2d(3)

    def test_iteration_breakdown(self, torus9):
        schedule = native_alltoall_schedule(torus9)
        result = simulate_dlrm_iteration(torus9, schedule, DLRMConfig())
        assert result.total_seconds > 0
        assert 0.0 <= result.communication_fraction <= 1.0
        assert result.forward_alltoall_seconds > 0
        assert result.backward_alltoall_seconds > 0

    def test_buffer_scales_with_batch(self):
        small = DLRMConfig(global_batch=512).alltoall_bytes_per_node(8)
        large = DLRMConfig(global_batch=2048).alltoall_bytes_per_node(8)
        assert large == pytest.approx(4 * small)

    def test_better_schedule_is_not_slower(self, torus9):
        from repro.core import solve_mcf_extract_paths

        mcf = simulate_dlrm_iteration(torus9, solve_mcf_extract_paths(torus9))
        native = simulate_dlrm_iteration(torus9, native_alltoall_schedule(torus9))
        assert mcf.total_seconds <= native.total_seconds + 1e-12


class TestMoE:
    @pytest.fixture(scope="class")
    def torus9(self):
        return torus_2d(3)

    def test_balanced_routing_matrix(self):
        mat = token_routing_matrix(8, MoEConfig(zipf_alpha=0.0))
        assert np.all(np.diag(mat) == 0)
        off_diag = mat[mat > 0]
        assert np.allclose(off_diag, off_diag[0])

    def test_skewed_routing_matrix_imbalanced(self):
        cfg = MoEConfig(zipf_alpha=1.2)
        mat = token_routing_matrix(8, cfg, seed=0)
        received = mat.sum(axis=0)
        assert received.max() / received.mean() > 1.1
        # Total routed tokens preserved.
        assert mat.sum() == pytest.approx(8 * cfg.tokens_per_rank * cfg.top_k, rel=1e-6)

    def test_layer_simulation(self, torus9):
        schedule = native_alltoall_schedule(torus9)
        result = simulate_moe_layer(torus9, schedule, MoEConfig(zipf_alpha=0.8), seed=3)
        assert result.total_seconds > 0
        assert result.imbalance >= 1.0
        assert result.dispatch_seconds > 0 and result.combine_seconds > 0

    def test_skew_increases_exchange_time(self, torus9):
        schedule = native_alltoall_schedule(torus9)
        balanced = simulate_moe_layer(torus9, schedule, MoEConfig(zipf_alpha=0.0))
        skewed = simulate_moe_layer(torus9, schedule, MoEConfig(zipf_alpha=1.5), seed=1)
        assert skewed.dispatch_seconds >= balanced.dispatch_seconds
