"""End-to-end integration tests: topology -> schedule -> XML -> simulator -> throughput.

Each test walks one of the paper's full tool-chains (Fig. 1 + §4) and checks
the qualitative result the evaluation section reports.
"""

import pytest

from repro.analysis import normalize_times
from repro.baselines import native_alltoall_schedule, taccl_like_schedule
from repro.core import (
    ForwardingModel,
    SchedulingRequest,
    generate_schedule,
    solve_decomposed_mcf,
    solve_mcf_extract_paths,
    solve_path_mcf,
)
from repro.paths import edge_disjoint_path_sets, ewsp_schedule, sssp_schedule
from repro.routing import lash_sequential_assign, verify_layers
from repro.schedule import (
    chunk_path_schedule,
    chunk_timestepped_flow,
    compile_to_msccl_xml,
    compile_to_ompi_xml,
    execute_link_xml,
    execute_routed_xml,
)
from repro.simulator import (
    a100_ml_fabric,
    cerio_hpc_fabric,
    steady_state_throughput,
    throughput_sweep,
)
from repro.topology import edge_punctured_torus


class TestLinkPipeline:
    """ML-fabric pipeline: tsMCF -> chunking -> MSCCL XML -> interpreter -> throughput."""

    def test_full_toolchain_hypercube(self, cube3, cube3_tsmcf):
        schedule = chunk_timestepped_flow(cube3_tsmcf)
        xml = compile_to_msccl_xml(schedule)
        fabric = a100_ml_fabric()
        result = execute_link_xml(xml, cube3, buffer_bytes=2 ** 28, fabric=fabric)
        bound = steady_state_throughput(8, 0.25, fabric)
        assert 0.9 * bound <= result.throughput <= bound

    def test_tsmcf_beats_taccl_surrogate_at_large_buffers(self, cube3, cube3_link_schedule):
        """Fig. 3 shape: tsMCF >= TACCL with a visible gap."""
        fabric = a100_ml_fabric()
        buf = 2 ** 28
        taccl = taccl_like_schedule(cube3)
        mcf_tp = throughput_sweep(cube3_link_schedule, [buf], fabric=fabric)[0].throughput
        taccl_tp = throughput_sweep(taccl, [buf], fabric=fabric)[0].throughput
        assert mcf_tp >= 1.1 * taccl_tp

    def test_throughput_rises_with_buffer_size(self, cube3_link_schedule):
        """Fig. 3 x-axis behaviour: latency-bound at small buffers, saturating at large."""
        fabric = a100_ml_fabric()
        sweep = throughput_sweep(cube3_link_schedule, [2 ** 13, 2 ** 18, 2 ** 23, 2 ** 28],
                                 fabric=fabric)
        tps = [r.throughput for r in sweep]
        assert tps[0] < 0.5 * tps[-1]
        assert tps == sorted(tps)


class TestPathPipeline:
    """HPC-fabric pipeline: MCF-extP -> LASH -> OMPI XML -> interpreter -> throughput."""

    def test_full_toolchain_genkautz(self, genkautz_3_10, genkautz_extp):
        routes = [tuple(p.nodes) for plist in genkautz_extp.paths.values() for p in plist]
        layers = lash_sequential_assign(routes)
        assert verify_layers(layers)
        assert layers.num_layers <= 4
        routed = chunk_path_schedule(genkautz_extp, layers=layers.layer_of)
        xml = compile_to_ompi_xml(routed)
        fabric = cerio_hpc_fabric()
        result = execute_routed_xml(xml, genkautz_3_10, buffer_bytes=2 ** 28, fabric=fabric)
        bound = steady_state_throughput(10, genkautz_extp.concurrent_flow, fabric)
        assert result.throughput >= 0.85 * bound

    def test_mcf_extp_beats_native_on_bipartite(self, bipartite44):
        """Fig. 4 left: MCF-extP outperforms the native single-path all-to-all."""
        fabric = cerio_hpc_fabric()
        buf = 2 ** 28
        mcf = chunk_path_schedule(solve_mcf_extract_paths(bipartite44))
        native = chunk_path_schedule(native_alltoall_schedule(bipartite44))
        mcf_tp = throughput_sweep(mcf, [buf], fabric=fabric)[0].throughput
        native_tp = throughput_sweep(native, [buf], fabric=fabric)[0].throughput
        assert mcf_tp >= 1.5 * native_tp

    def test_mcf_extp_beats_sssp_on_punctured_torus(self):
        """Fig. 5 shape: MCF handles failures better than SSSP."""
        topo = edge_punctured_torus([3, 3], num_removed=2, seed=3)
        mcf_time = solve_mcf_extract_paths(topo).all_to_all_time()
        sssp_time = sssp_schedule(topo).all_to_all_time()
        assert mcf_time <= sssp_time + 1e-9

    def test_normalized_ordering_on_genkautz(self, genkautz_4_16):
        """Fig. 8 ordering: MCF <= pMCF-disjoint <= EwSP/SSSP at d=4."""
        optimal = 1.0 / solve_decomposed_mcf(genkautz_4_16).concurrent_flow
        times = {
            "pmcf-disjoint": solve_path_mcf(
                genkautz_4_16, edge_disjoint_path_sets(genkautz_4_16)).all_to_all_time(),
            "ewsp": ewsp_schedule(genkautz_4_16).all_to_all_time(),
            "sssp": sssp_schedule(genkautz_4_16).all_to_all_time(),
        }
        normalized = normalize_times(times, optimal)
        assert normalized["pmcf-disjoint"] <= normalized["ewsp"] + 1e-9
        assert normalized["pmcf-disjoint"] <= 1.2
        assert normalized["ewsp"] > 1.05
        assert normalized["sssp"] > 1.05


class TestPipelineAPI:
    def test_generate_schedule_host_vs_nic_consistency(self, bipartite44):
        host = generate_schedule(bipartite44, SchedulingRequest(forwarding=ForwardingModel.HOST))
        nic = generate_schedule(bipartite44, SchedulingRequest(forwarding=ForwardingModel.NIC))
        # Same topology, no extra forwarding bandwidth -> same asymptotic rate.
        assert host.equivalent_concurrent_flow() == pytest.approx(
            nic.concurrent_flow, rel=0.05)

    def test_bottlenecked_host_schedule_loses_throughput(self, torus33):
        """§5.2: host-injection bottleneck reduces the achievable flow value."""
        free = generate_schedule(torus33, SchedulingRequest(
            forwarding=ForwardingModel.HOST))
        capped = generate_schedule(torus33, SchedulingRequest(
            forwarding=ForwardingModel.HOST, host_bandwidth=2.0, link_bandwidth=1.0))
        assert capped.equivalent_concurrent_flow() < free.equivalent_concurrent_flow()
