"""Tests for the decomposed MCF (master + child LPs, §3.1.2)."""

import pytest

from repro.core import (
    solve_child_lp,
    solve_decomposed_mcf,
    solve_link_mcf,
    solve_master_lp,
)
from repro.core.flow import conservation_violation, max_link_utilization
from repro.topology import Topology, complete, generalized_kautz, hypercube, ring


class TestMasterLP:
    def test_master_value_matches_full_mcf(self, cube3):
        master = solve_master_lp(cube3)
        assert master.concurrent_flow == pytest.approx(0.25, rel=1e-6)

    def test_master_grouped_flow_capacity(self, cube3):
        master = solve_master_lp(cube3)
        loads = {}
        for s, per in master.grouped_flows.items():
            for e, v in per.items():
                loads[e] = loads.get(e, 0.0) + v
        for e, load in loads.items():
            assert load <= cube3.capacity(*e) + 1e-6

    def test_master_grouped_flow_sinks_f_everywhere(self, cube3):
        master = solve_master_lp(cube3)
        f = master.concurrent_flow
        for s, per in master.grouped_flows.items():
            for u in cube3.nodes:
                if u == s:
                    continue
                inflow = sum(v for (a, b), v in per.items() if b == u)
                outflow = sum(v for (a, b), v in per.items() if a == u)
                assert inflow - outflow >= f - 1e-6

    def test_disconnected_rejected(self):
        topo = Topology.from_edges(4, [(0, 1), (1, 0), (2, 3), (3, 2)])
        with pytest.raises(ValueError):
            solve_master_lp(topo)


class TestChildLP:
    def test_child_splits_grouped_flow(self, cube3):
        master = solve_master_lp(cube3)
        flows, elapsed = solve_child_lp(cube3, 0, master.grouped_flows[0],
                                        master.concurrent_flow)
        assert elapsed >= 0.0
        assert set(flows.keys()) == {(0, d) for d in range(1, 8)}
        for (s, d), per in flows.items():
            delivered = sum(v for (a, b), v in per.items() if b == d) - \
                sum(v for (a, b), v in per.items() if a == d)
            assert delivered >= master.concurrent_flow - 1e-5

    def test_child_respects_grouped_capacity(self, cube3):
        master = solve_master_lp(cube3)
        flows, _ = solve_child_lp(cube3, 3, master.grouped_flows[3], master.concurrent_flow)
        totals = {}
        for per in flows.values():
            for e, v in per.items():
                totals[e] = totals.get(e, 0.0) + v
        for e, v in totals.items():
            assert v <= master.grouped_flows[3].get(e, 0.0) + 1e-5


class TestDecomposedEndToEnd:
    @pytest.mark.parametrize("make_topo,expected", [
        (lambda: ring(5), 0.1),
        (lambda: complete(5), 1.0),
        (lambda: hypercube(3), 0.25),
    ])
    def test_matches_known_optimum(self, make_topo, expected):
        sol = solve_decomposed_mcf(make_topo())
        assert sol.concurrent_flow == pytest.approx(expected, rel=1e-5)

    def test_matches_original_mcf_on_irregular_graph(self):
        # Punctured/irregular topology where the optimum is not obvious:
        # decomposition must agree with the monolithic LP (§3.1.2 claim).
        topo = generalized_kautz(3, 9)
        original = solve_link_mcf(topo).concurrent_flow
        decomposed = solve_decomposed_mcf(topo).concurrent_flow
        assert decomposed == pytest.approx(original, rel=1e-5)

    def test_matches_original_on_torus(self, torus33):
        original = solve_link_mcf(torus33).concurrent_flow
        decomposed = solve_decomposed_mcf(torus33).concurrent_flow
        assert decomposed == pytest.approx(original, rel=1e-5)

    def test_capacity_respected(self, cube3_decomposed_mcf):
        assert max_link_utilization(cube3_decomposed_mcf) <= 1.0 + 1e-5

    def test_all_commodities_delivered(self, cube3_decomposed_mcf):
        f = cube3_decomposed_mcf.concurrent_flow
        for s, d in cube3_decomposed_mcf.topology.commodities():
            assert cube3_decomposed_mcf.delivered(s, d) >= f - 1e-5

    def test_conservation(self, cube3_decomposed_mcf):
        for (s, d), per in cube3_decomposed_mcf.flows.items():
            assert conservation_violation(per, s, d) < 1e-6

    def test_timings_recorded(self, cube3_decomposed_mcf):
        timings = cube3_decomposed_mcf.meta["timings"]
        assert timings.master_seconds > 0
        assert len(timings.child_seconds_each) == 8
        assert timings.parallel_seconds <= timings.total_seconds + 1e-9
        assert timings.max_child_seconds == max(timings.child_seconds_each)

    def test_parallel_jobs_give_same_value(self, cube3, cube3_decomposed_mcf):
        parallel = solve_decomposed_mcf(cube3, n_jobs=2)
        assert parallel.concurrent_flow == pytest.approx(
            cube3_decomposed_mcf.concurrent_flow, rel=1e-6)

    def test_master_has_quadratically_fewer_variables(self, genkautz_4_16):
        # O(k N^2) for the master vs O(k N^3) for the original formulation.

        master = solve_master_lp(genkautz_4_16)
        original = solve_link_mcf(genkautz_4_16, repair=False)
        n = genkautz_4_16.num_nodes
        assert original.meta["num_variables"] > (n - 1) / 2 * len(master.grouped_flows)
