"""Tests for the multi-job cluster co-simulation layer (``repro.cluster``).

Covers the trace-spec grammar, placement permutations, barrier ordering,
the zero-contention differential against the single-collective engine,
seeded determinism of Poisson traces, and the cluster axis of the
declarative scenario/sweep stack (hash stability, record metrics).
"""

import json

import pytest

from repro.cluster import (
    PLACEMENT_POLICIES,
    arrival_times,
    jobs_from_spec,
    parse_cluster_spec,
    placement_permutation,
    run_cluster,
)
from repro.experiments import Scenario
from repro.simulator import cerio_hpc_fabric, run_routed_collective

BUF = float(2 ** 20)


# --------------------------------------------------------------------------- #
# Trace-spec grammar
# --------------------------------------------------------------------------- #
class TestTraceSpec:
    def test_defaults(self):
        spec = parse_cluster_spec("cluster:jobs=4")
        assert spec.jobs == 4
        assert spec.arrival == "fixed" and spec.rate == 0.0
        assert spec.placement == "packed"
        assert spec.seed == 0 and spec.rounds == 1 and spec.compute == 0.0
        assert spec.buffer is None

    def test_full_spec_round_trips_canonically(self):
        a = parse_cluster_spec("cluster:jobs=8:arrival=poisson~0.1"
                               ":placement=spread:seed=7:rounds=2"
                               ":compute=0.5:buffer=1048576")
        b = parse_cluster_spec("cluster:buffer=1048576:compute=0.5:rounds=2"
                               ":seed=7:placement=spread"
                               ":arrival=poisson~0.1:jobs=8")
        assert a == b
        assert a.canonical() == b.canonical()

    def test_trace_arrivals_verbatim(self):
        spec = parse_cluster_spec("cluster:jobs=3:arrival=trace~0|0.5|2.25")
        assert arrival_times(spec) == (0.0, 0.5, 2.25)

    def test_fixed_arrivals_are_multiples(self):
        spec = parse_cluster_spec("cluster:jobs=3:arrival=fixed~2.0")
        assert arrival_times(spec) == (0.0, 2.0, 4.0)

    def test_poisson_arrivals_seeded(self):
        spec = parse_cluster_spec("cluster:jobs=6:arrival=poisson~10:seed=3")
        first = arrival_times(spec)
        assert first == arrival_times(spec)  # same seed, same draw
        other = parse_cluster_spec("cluster:jobs=6:arrival=poisson~10:seed=4")
        assert first != arrival_times(other)
        assert all(b >= a for a, b in zip(first, first[1:]))  # cumulative

    @pytest.mark.parametrize("bad", [
        "overlap:jobs=4",                       # wrong prefix
        "cluster",                              # jobs missing
        "cluster:arrival=poisson~1",            # jobs missing
        "cluster:jobs=0",                       # jobs < 1
        "cluster:jobs=4:arrival=poisson~0",     # rate must be > 0
        "cluster:jobs=4:arrival=uniform~1",     # unknown process
        "cluster:jobs=2:arrival=trace~0",       # one time for two jobs
        "cluster:jobs=2:arrival=trace~3|1",     # decreasing times
        "cluster:jobs=4:placement=diagonal",    # unknown policy
        "cluster:jobs=4:rounds=0",              # rounds < 1
        "cluster:jobs=4:compute=-1",            # negative compute
        "cluster:jobs=4:buffer=0",              # buffer must be > 0
        "cluster:jobs=4:jobs=5",                # duplicate key
        "cluster:jobs=4:flavor=mild",           # unknown key
    ])
    def test_malformed_specs_rejected(self, bad):
        with pytest.raises(ValueError):
            parse_cluster_spec(bad)

    def test_jobs_from_spec_requires_a_buffer(self):
        spec = parse_cluster_spec("cluster:jobs=2")
        with pytest.raises(ValueError):
            jobs_from_spec(spec)
        jobs = jobs_from_spec(spec, default_buffer=BUF)
        assert len(jobs) == 2
        # rounds=1, compute=0 -> one compute phase and one comm phase each
        assert all(len(job.phases) == 2 for job in jobs)


# --------------------------------------------------------------------------- #
# Placement
# --------------------------------------------------------------------------- #
class TestPlacement:
    def test_packed_is_identity(self):
        assert placement_permutation("packed", 3, 8, 4) == tuple(range(8))

    def test_spread_rotates_per_job(self):
        p0 = placement_permutation("spread", 0, 8, 4)
        p1 = placement_permutation("spread", 1, 8, 4)
        assert p0 == tuple(range(8))
        assert p1 == tuple((i + 2) % 8 for i in range(8))  # 8 // 4 = 2 stride

    def test_random_is_a_seeded_permutation(self):
        p = placement_permutation("random", 2, 8, 4, seed=5)
        assert sorted(p) == list(range(8))
        assert p == placement_permutation("random", 2, 8, 4, seed=5)
        assert p != placement_permutation("random", 2, 8, 4, seed=6)

    def test_policies_exported(self):
        assert set(PLACEMENT_POLICIES) == {"packed", "spread", "random"}
        with pytest.raises(ValueError):
            placement_permutation("diagonal", 0, 8, 4)


# --------------------------------------------------------------------------- #
# Co-simulation semantics
# --------------------------------------------------------------------------- #
class TestRunCluster:
    def test_link_schedule_rejected(self, cube3_link_schedule):
        with pytest.raises(ValueError, match="routed"):
            run_cluster(cube3_link_schedule, "cluster:jobs=2",
                        default_buffer=BUF)

    def test_zero_contention_matches_isolated_engine(
            self, genkautz_routed_schedule):
        """A lone job must complete exactly like the single-collective run."""
        fabric = cerio_hpc_fabric()
        isolated = run_routed_collective(genkautz_routed_schedule, BUF,
                                         fabric=fabric)
        result = run_cluster(genkautz_routed_schedule, "cluster:jobs=1",
                             fabric=fabric, default_buffer=BUF)
        job = result.jobs[0]
        assert job.completion_seconds == pytest.approx(
            isolated.completion_time, abs=1e-9)
        assert job.slowdown == pytest.approx(1.0, abs=1e-9)

    def test_spaced_arrivals_have_unit_slowdown(self, genkautz_routed_schedule):
        """Arrivals far apart never share the fabric: slowdown stays 1."""
        result = run_cluster(genkautz_routed_schedule,
                             "cluster:jobs=3:arrival=fixed~10",
                             default_buffer=BUF)
        for job in result.jobs:
            assert job.slowdown == pytest.approx(1.0, abs=1e-9)
        assert result.makespan_seconds > 20.0  # last arrival at t=20

    def test_contention_slows_jobs_down(self, genkautz_routed_schedule):
        """Simultaneous arrivals share bandwidth; slowdown must exceed 1."""
        result = run_cluster(genkautz_routed_schedule, "cluster:jobs=4",
                             default_buffer=BUF)
        assert all(job.slowdown > 1.0 + 1e-6 for job in result.jobs)
        assert 0.0 < result.fabric_utilization <= 1.0 + 1e-9

    def test_barriers_order_phase_spans(self, genkautz_routed_schedule):
        result = run_cluster(
            genkautz_routed_schedule,
            "cluster:jobs=2:rounds=2:compute=0.001",
            default_buffer=BUF)
        for job in result.jobs:
            kinds = [kind for kind, _, _ in job.phase_spans]
            assert kinds == ["compute", "comm", "compute", "comm"]
            previous_end = job.arrival
            for kind, start, end in job.phase_spans:
                assert start == pytest.approx(previous_end, abs=1e-12)
                assert end >= start
                previous_end = end
            assert previous_end == pytest.approx(job.finish, abs=1e-12)
            compute_spans = [s for s in job.phase_spans if s[0] == "compute"]
            for _, start, end in compute_spans:
                assert end - start == pytest.approx(0.001, abs=1e-12)

    def test_seeded_poisson_run_is_deterministic(self, genkautz_routed_schedule):
        """Same seed -> byte-identical result payload across fresh runs."""
        trace = "cluster:jobs=5:arrival=poisson~2000:seed=11"

        def payload():
            result = run_cluster(genkautz_routed_schedule, trace,
                                 default_buffer=BUF)
            return json.dumps({
                "slowdowns": result.slowdowns,
                "makespan": result.makespan_seconds,
                "utilization": result.fabric_utilization,
                "spans": [job.phase_spans for job in result.jobs],
                "meta": {k: v for k, v in result.meta.items()},
            }, sort_keys=True)

        assert payload() == payload()

    def test_placement_changes_outcome_but_stays_valid(
            self, genkautz_routed_schedule):
        for policy in PLACEMENT_POLICIES:
            result = run_cluster(
                genkautz_routed_schedule,
                f"cluster:jobs=3:placement={policy}:seed=2",
                default_buffer=BUF)
            assert len(result.jobs) == 3
            assert all(job.slowdown >= 1.0 - 1e-9 for job in result.jobs)


# --------------------------------------------------------------------------- #
# Scenario / sweep integration
# --------------------------------------------------------------------------- #
class TestInjectorLazyRetire:
    """The injector deactivates completed rows and compacts only lazily."""

    def _injector(self):
        from repro.cluster.injector import FlowInjector
        from repro.simulator import FluidFlow
        from repro.topology import hypercube

        topo = hypercube(3)
        injector = FlowInjector(topo, cerio_hpc_fabric())
        flows = [FluidFlow(path=(s, s ^ 1), size_bytes=float((i + 1) * 4096))
                 for i, s in enumerate(range(8)) for _ in [0]]
        injector.inject(flows, name="batch0")
        injector.inject(
            [FluidFlow(path=(s, s ^ 2), size_bytes=float((s + 1) * 4096))
             for s in range(8)], name="batch1")
        return injector

    def test_retire_is_lazy_then_compacts(self):
        injector = self._injector()
        assert injector.num_flows == 16
        program_before = injector.program()
        # Finish 6 of 16: dead (6) < live (10) -> rows deactivate, arrays keep
        # their length and the cached program stays warm.
        injector._remaining[:6] = 0.0
        retired = injector.retire()
        assert len(retired) == 6
        assert injector.num_flows == 10
        assert injector.compactions == 0
        assert injector.program() is program_before
        assert len(injector.remaining) == 16
        # Dead rows fill at rate zero and are never retired twice.
        rates, _ = injector.fill()
        assert (rates[:6] == 0.0).all() and (rates[6:] > 0).all()
        assert injector.retire() == []
        # Finish 6 more: dead (12) > live (4) -> wholesale compaction.
        injector._remaining[6:12] = 0.0
        assert len(injector.retire()) == 6
        assert injector.compactions == 1
        assert injector.num_flows == 4
        assert len(injector.remaining) == 4
        rates, _ = injector.fill()
        assert (rates > 0).all()

    def test_inject_after_lazy_retire_appends_past_dead_rows(self):
        from repro.simulator import FluidFlow

        injector = self._injector()
        injector._remaining[:4] = 0.0
        injector.retire()
        assert injector.num_flows == 12
        injector.inject([FluidFlow(path=(0, 1), size_bytes=4096.0)],
                        name="late")
        assert injector.num_flows == 13
        rates, _ = injector.fill()
        assert rates[-1] > 0 and (rates[:4] == 0.0).all()


class TestClusterScenario:
    TRACE = "cluster:jobs=4:arrival=poisson~2000:placement=packed:seed=0"

    def _scenario(self, trace=TRACE, **kwargs):
        return Scenario(topology="genkautz:d=3,n=10", scheme="mcf-extp",
                        buffers=(BUF,), cluster=trace, **kwargs)

    def test_hash_is_param_order_invariant(self):
        reordered = ("cluster:seed=0:placement=packed"
                     ":arrival=poisson~2000:jobs=4")
        assert self._scenario().key() == self._scenario(trace=reordered).key()

    def test_cluster_only_affects_simulate_stage(self):
        with_cluster = self._scenario()
        without = Scenario(topology="genkautz:d=3,n=10", scheme="mcf-extp",
                           buffers=(BUF,))
        assert (with_cluster.stage_key("synthesize")
                == without.stage_key("synthesize"))
        assert (with_cluster.stage_key("lower") == without.stage_key("lower"))
        assert (with_cluster.stage_key("simulate")
                != without.stage_key("simulate"))

    def test_different_traces_hash_differently(self):
        other = self._scenario(trace=self.TRACE.replace("seed=0", "seed=1"))
        assert self._scenario().key() != other.key()

    def test_invalid_trace_rejected_eagerly(self):
        with pytest.raises(ValueError):
            self._scenario(trace="cluster:jobs=0")

    def test_cluster_excludes_overlap(self):
        with pytest.raises(ValueError, match="mutually exclusive"):
            self._scenario(overlap=2)

    def test_sweep_record_carries_cluster_metrics(self, tmp_path):
        from repro.experiments import run_sweep

        out = tmp_path / "cluster.jsonl"
        summaries = run_sweep([self._scenario()], str(out))
        assert len(summaries) == 1 and summaries[0].status == "ok"
        (record,) = [json.loads(line) for line in out.open()]
        metrics = record["metrics"]
        assert metrics["cluster_jobs"] == 4
        assert metrics["makespan_seconds"] > 0
        assert metrics["job_slowdown_p50"] >= 1.0 - 1e-9
        assert metrics["job_slowdown_p99"] >= metrics["job_slowdown_p50"]
        assert 0.0 < metrics["fabric_utilization"] <= 1.0 + 1e-9
        assert set(metrics["job_slowdowns"]) == {"0", "1", "2", "3"}
        assert set(metrics["job_completion_seconds"]) == {"0", "1", "2", "3"}
        assert metrics["sim_fill_rounds"] >= 1 and metrics["sim_events"] >= 1
        assert record["scenario"]["cluster"] == self.TRACE

    def test_fig_cluster_registered(self):
        from repro.report import REGISTRY

        spec = REGISTRY["fig_cluster"]
        scenarios = spec.scenarios(fast=True)
        assert scenarios  # fast grid is non-empty
        assert all(s.cluster is not None and s.cluster.startswith("cluster:")
                   for s in scenarios)
        assert all(s.name.startswith("fig_cluster/") for s in scenarios)
