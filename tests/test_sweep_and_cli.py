"""Tests for the scheme-comparison sweep layer and the command-line interface."""

import json

import pytest

from repro.analysis import available_schemes, compare_schemes, run_scheme
from repro.cli import build_parser, build_topology, main
from repro.experiments import scenario_schema_version


class TestSchemeRegistry:
    def test_available_schemes_contains_paper_schemes(self):
        names = available_schemes()
        for expected in ("mcf-extp", "pmcf-disjoint", "ewsp", "sssp", "dor",
                         "native", "ilp-disjoint"):
            assert expected in names

    def test_run_scheme_by_name(self, bipartite44):
        schedule = run_scheme("ewsp", bipartite44)
        assert schedule.concurrent_flow > 0

    def test_unknown_scheme_rejected(self, bipartite44):
        with pytest.raises(KeyError):
            run_scheme("does-not-exist", bipartite44)


class TestCompareSchemes:
    def test_compare_orders_mcf_first(self, bipartite44):
        results = compare_schemes(bipartite44, ["mcf-extp", "sssp", "native"],
                                  normalize=True)
        by_name = {r.scheme: r for r in results}
        assert by_name["mcf-extp"].normalized_time == pytest.approx(1.0, abs=0.01)
        assert by_name["sssp"].normalized_time >= 1.0 - 1e-9
        assert by_name["native"].normalized_time > by_name["mcf-extp"].normalized_time

    def test_compare_with_throughputs(self, bipartite44):
        results = compare_schemes(bipartite44, ["ewsp"], buffer_sizes=[2 ** 20, 2 ** 24])
        assert len(results[0].throughputs) == 2
        assert all(tp > 0 for tp in results[0].throughputs.values())

    def test_failures_are_captured_not_raised(self, bipartite44):
        # DOR is undefined on a bipartite graph; with skip_failures it reports
        # the error instead of raising.
        results = compare_schemes(bipartite44, ["dor"], normalize=False)
        assert results[0].error is not None
        with pytest.raises(Exception):
            compare_schemes(bipartite44, ["dor"], normalize=False, skip_failures=False)


class TestTopologySpecs:
    @pytest.mark.parametrize("spec,nodes", [
        ("genkautz:d=3,n=10", 10),
        ("hypercube:dim=3", 8),
        ("twisted:dim=3", 8),
        ("bipartite:left=4,right=4", 8),
        ("torus:dims=3x3", 9),
        ("mesh:dims=2x3", 6),
        ("xpander:d=3,lift=3", 12),
        ("rrg:d=3,n=10,seed=2", 10),
    ])
    def test_build_topology_specs(self, spec, nodes):
        topo = build_topology(spec)
        assert topo.num_nodes == nodes
        assert topo.is_strongly_connected()

    def test_unknown_family_rejected(self):
        with pytest.raises(ValueError):
            build_topology("klein-bottle:n=4")

    def test_malformed_params_rejected(self):
        with pytest.raises(ValueError):
            build_topology("torus:3x3")


class TestCLI:
    def test_parser_builds(self):
        parser = build_parser()
        args = parser.parse_args(["topology", "hypercube:dim=2"])
        assert args.command == "topology"

    def test_topology_command(self, capsys):
        assert main(["topology", "hypercube:dim=2"]) == 0
        out = capsys.readouterr().out
        assert "diameter" in out

    def test_synthesize_command_hpc(self, tmp_path, capsys):
        out_file = tmp_path / "schedule.xml"
        assert main(["synthesize", "genkautz:d=3,n=8", "--fabric", "hpc",
                     "-o", str(out_file)]) == 0
        assert out_file.exists()
        assert "F =" in capsys.readouterr().out

    def test_synthesize_command_ml(self, capsys):
        assert main(["synthesize", "bipartite:left=3,right=3", "--fabric", "ml"]) == 0
        assert "tsMCF" in capsys.readouterr().out

    def test_simulate_command(self, capsys):
        assert main(["simulate", "hypercube:dim=2", "--buffers", "1048576,16777216"]) == 0
        out = capsys.readouterr().out
        assert "throughput" in out

    def test_compare_command(self, capsys):
        assert main(["compare", "torus:dims=3x3", "--schemes", "ewsp,sssp,dor"]) == 0
        out = capsys.readouterr().out
        assert "ewsp" in out and "dor" in out

    def test_version_flag(self, capsys):
        import repro

        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0
        assert repro.__version__ in capsys.readouterr().out

    def test_compare_jobs_output_identical_to_serial(self, capsys):
        args = ["compare", "hypercube:dim=3", "--schemes", "ewsp,sssp,pmcf-disjoint"]
        assert main(args) == 0
        serial_out = capsys.readouterr().out
        assert main(args + ["--jobs", "3"]) == 0
        parallel_out = capsys.readouterr().out
        assert parallel_out == serial_out

    def test_compare_surfaces_cache_stats_on_stderr(self, capsys):
        assert main(["compare", "hypercube:dim=2", "--schemes", "ewsp"]) == 0
        err = capsys.readouterr().err
        assert "lp-cache:" in err and "stage-cache:" in err


class TestSweepCLI:
    ARGS = ["sweep",
            "--axis", "topology=hypercube:dim=2;bipartite:left=3,right=3",
            "--axis", "scheme=ewsp;sssp",
            "--set", "buffers=1048576", "--set", "max_denominator=16"]

    def test_sweep_writes_jsonl_and_csv(self, tmp_path, capsys):
        out = str(tmp_path / "sweep.jsonl")
        csv_path = str(tmp_path / "sweep.csv")
        assert main(self.ARGS + ["--out", out, "--csv", csv_path, "--jobs", "2"]) == 0
        captured = capsys.readouterr()
        assert "Sweep: 4 scenario(s)" in captured.out
        assert "lp-cache:" in captured.err and "solve" in captured.err
        records = [json.loads(line) for line in open(out)]
        assert len(records) == 4
        assert all(r["status"] == "ok" and r["schema_version"] == scenario_schema_version()
                   for r in records)
        assert open(csv_path).readline().startswith("key,label,status")

    def test_sweep_resume_skips_completed(self, tmp_path, capsys):
        out = str(tmp_path / "resume.jsonl")
        assert main(self.ARGS + ["--out", out]) == 0
        capsys.readouterr()
        assert main(self.ARGS + ["--out", out, "--resume"]) == 0
        captured = capsys.readouterr()
        assert captured.out.count("resumed") == 4
        assert "(4 resumed)" in captured.err
        assert len(open(out).readlines()) == 4    # nothing re-appended

    def test_sweep_from_grid_file(self, tmp_path, capsys):
        grid = {"base": {"scheme": "ewsp", "buffers": [1048576]},
                "axes": {"topology": ["hypercube:dim=2", "ring:n=4"]}}
        path = tmp_path / "grid.json"
        path.write_text(json.dumps(grid))
        assert main(["sweep", "--grid", str(path)]) == 0
        assert "Sweep: 2 scenario(s)" in capsys.readouterr().out

    def test_sweep_error_scenario_sets_exit_code(self, capsys):
        # DOR is undefined on a bipartite topology: recorded, exit code 1.
        assert main(["sweep", "--set", "topology=bipartite:left=3,right=3",
                     "--axis", "scheme=dor;ewsp"]) == 1
        assert "error" in capsys.readouterr().out

    def test_sweep_empty_grid_rejected(self):
        with pytest.raises(ValueError):
            main(["sweep"])
