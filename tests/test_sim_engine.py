"""Tests for the unified vectorized simulation engine.

Covers the differential suite (vectorized engine vs. the retained scalar
reference on randomized topologies and flow sets), the overlap and
degraded-fabric axes end-to-end, the golden fig4/table1 report panels
(byte-identical to the pre-refactor simulator), and the engine counters.
"""

import random
from pathlib import Path

import networkx as nx
import pytest

from repro.experiments import Plan, Scenario
from repro.simulator import (
    FabricModel,
    FluidFlow,
    cerio_hpc_fabric,
    compile_flows,
    engine_counters,
    fabric_from_spec,
    ideal_fabric,
    parse_link_scales,
    parse_link_set,
    reset_engine_counters,
    run_routed_collective,
    simulate_flows,
    simulate_flows_reference,
    simulate_link_schedule,
    simulate_program,
)
from repro.topology import from_spec, hypercube, ring

GOLDEN = Path(__file__).parent / "golden"


def _random_flows(topo, rng, n_flows, zero_fraction=0.1):
    """Random flows along shortest paths with heterogeneous sizes."""
    paths = dict(nx.all_pairs_shortest_path(topo.graph))
    nodes = topo.nodes
    flows = []
    for _ in range(n_flows):
        s, d = rng.sample(nodes, 2)
        size = 0.0 if rng.random() < zero_fraction else rng.uniform(1.0, 1e6)
        flows.append(FluidFlow(path=tuple(paths[s][d]), size_bytes=size))
    return flows


class TestDifferential:
    """Vectorized engine vs. scalar reference: completion times within 1e-9."""

    TOPOLOGIES = ["ring:n=6", "hypercube:dim=3", "torus:dims=3x3",
                  "rrg:d=3,n=12,seed=5", "genkautz:d=3,n=10"]
    FABRICS = [
        ideal_fabric(link_bandwidth=100.0),
        cerio_hpc_fabric(),                                  # fwd cap
        FabricModel(link_bandwidth=50.0, injection_bandwidth=60.0,
                    per_hop_latency=1e-4, per_message_overhead=1e-3),
        fabric_from_spec("hpc:scale=0~1:0.5"),               # degraded
    ]

    @pytest.mark.parametrize("spec", TOPOLOGIES)
    @pytest.mark.parametrize("fabric_idx", range(len(FABRICS)))
    def test_randomized_flow_sets_agree(self, spec, fabric_idx):
        topo = from_spec(spec)
        fabric = self.FABRICS[fabric_idx]
        rng = random.Random(hash((spec, fabric_idx)) % (2 ** 31))
        flows = _random_flows(topo, rng, n_flows=40)
        fast = simulate_flows(topo, flows, fabric)
        slow = simulate_flows_reference(topo, flows, fabric)
        assert fast.completion_time == pytest.approx(slow.completion_time, abs=1e-9)
        for a, b in zip(fast.flow_completion_times, slow.flow_completion_times):
            assert a == pytest.approx(b, abs=1e-9)
        assert fast.max_link_bytes == pytest.approx(slow.max_link_bytes)
        assert fast.total_bytes == pytest.approx(slow.total_bytes)

    def test_capacity_heterogeneous_links_agree(self):
        # Mixed per-edge capacities exercise unequal resource shares.
        topo = ring(5).copy()
        for i, (u, v) in enumerate(topo.edges):
            topo.graph.edges[u, v]["cap"] = 1.0 + (i % 3)
        rng = random.Random(7)
        flows = _random_flows(topo, rng, n_flows=30, zero_fraction=0.0)
        fabric = FabricModel(link_bandwidth=10.0, injection_bandwidth=15.0)
        fast = simulate_flows(topo, flows, fabric)
        slow = simulate_flows_reference(topo, flows, fabric)
        assert fast.completion_time == pytest.approx(slow.completion_time, abs=1e-9)

    def test_all_zero_byte_flows_agree(self):
        topo = hypercube(2)
        fabric = cerio_hpc_fabric()
        flows = [FluidFlow(path=(0, 1), size_bytes=0.0),
                 FluidFlow(path=(0, 2, 3), size_bytes=0.0)]
        fast = simulate_flows(topo, flows, fabric)
        slow = simulate_flows_reference(topo, flows, fabric)
        assert fast.flow_completion_times == pytest.approx(slow.flow_completion_times)
        # Zero-byte flows still pay their start-up latency.
        assert fast.flow_completion_times[1] > fast.flow_completion_times[0] > 0


class TestEngineCore:
    def test_single_flow(self):
        res = simulate_flows(ring(3), [FluidFlow(path=(0, 1), size_bytes=1000.0)],
                             ideal_fabric(link_bandwidth=100.0))
        assert res.completion_time == pytest.approx(10.0)
        assert res.fill_rounds >= 1
        assert res.events_processed >= 1

    def test_flow_crossing_down_link_rejected(self):
        fabric = cerio_hpc_fabric().degrade(down_links=((0, 1),))
        with pytest.raises(ValueError, match="down link"):
            simulate_flows(ring(3), [FluidFlow(path=(0, 1), size_bytes=10.0)], fabric)

    def test_down_link_elsewhere_is_fine(self):
        fabric = ideal_fabric(link_bandwidth=100.0).degrade(down_links=((1, 2),))
        res = simulate_flows(ring(3), [FluidFlow(path=(0, 1), size_bytes=1000.0)],
                             fabric)
        assert res.completion_time == pytest.approx(10.0)

    def test_scaled_link_slows_only_its_flows(self):
        fabric = ideal_fabric(link_bandwidth=100.0).degrade(
            link_scale={(0, 1): 0.5})
        flows = [FluidFlow(path=(0, 1), size_bytes=1000.0),
                 FluidFlow(path=(1, 2), size_bytes=1000.0)]
        res = simulate_flows(ring(3), flows, fabric)
        assert res.flow_completion_times[0] == pytest.approx(20.0)
        assert res.flow_completion_times[1] == pytest.approx(10.0)

    def test_set_completion_times(self):
        topo = ring(3)
        flows = [FluidFlow(path=(0, 1), size_bytes=1000.0),
                 FluidFlow(path=(1, 2), size_bytes=500.0)]
        res = simulate_program(topo, flows, ideal_fabric(link_bandwidth=100.0),
                               set_ids=[0, 1], set_names=("a", "b"))
        assert res.set_completion_times["a"] == pytest.approx(10.0)
        assert res.set_completion_times["b"] == pytest.approx(5.0)

    def test_bad_set_ids_length_rejected(self):
        with pytest.raises(ValueError, match="set_ids"):
            compile_flows(ring(3), [FluidFlow(path=(0, 1), size_bytes=1.0)],
                          ideal_fabric(), set_ids=[0, 1])

    def test_counters_accumulate(self):
        reset_engine_counters()
        simulate_flows(ring(3), [FluidFlow(path=(0, 1), size_bytes=10.0)],
                       ideal_fabric())
        counters = engine_counters()
        assert counters["simulations"] == 1
        assert counters["fill_rounds"] >= 1
        assert counters["events"] >= 1
        reset_engine_counters()
        assert engine_counters()["simulations"] == 0


class TestDegradedFabricModel:
    def test_parse_link_set_directed_and_symmetric(self):
        assert parse_link_set("0-1|2-3") == ((0, 1), (2, 3))
        assert parse_link_set("0~1") == ((0, 1), (1, 0))
        with pytest.raises(ValueError):
            parse_link_set("0-1-2")

    def test_parse_link_scales(self):
        assert parse_link_scales("0-1:0.5") == (((0, 1), 0.5),)
        assert parse_link_scales("0~1:0.25") == (((0, 1), 0.25), ((1, 0), 0.25))
        with pytest.raises(ValueError):
            parse_link_scales("0-1")

    def test_fabric_spec_with_degradation(self):
        fabric = fabric_from_spec("hpc:down=0~1,scale=2-3:0.5,forwarding_gbps=100")
        assert fabric.down_links == ((0, 1), (1, 0))
        assert fabric.link_scale == (((2, 3), 0.5),)
        assert fabric.forwarding_bandwidth == pytest.approx(100.0 * 1e9 / 8)
        assert fabric.degraded
        assert "degraded" in fabric.name

    def test_effective_link_bandwidth(self):
        fabric = fabric_from_spec("ideal:scale=0-1:0.5,down=1-2")
        assert fabric.effective_link_bandwidth(0, 1) == pytest.approx(0.5)
        assert fabric.effective_link_bandwidth(1, 2) == 0.0
        assert fabric.effective_link_bandwidth(2, 0) == pytest.approx(1.0)

    def test_non_positive_scale_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            FabricModel(link_scale=(((0, 1), 0.0),))

    def test_degradation_changes_scenario_key(self):
        base = Scenario(topology="ring:n=4", scheme="ewsp", fabric="hpc",
                        buffers=(2 ** 20,))
        degraded = Scenario(topology="ring:n=4", scheme="ewsp",
                            fabric="hpc:scale=0~1:0.5", buffers=(2 ** 20,))
        assert base.key() != degraded.key()
        # Only the simulate stage sees the fabric: schedules are shared.
        assert base.stage_key("lower") == degraded.stage_key("lower")


class TestOverlap:
    def test_overlap_changes_simulate_key_only(self):
        one = Scenario(topology="ring:n=4", scheme="ewsp", buffers=(2 ** 20,))
        two = Scenario(topology="ring:n=4", scheme="ewsp", buffers=(2 ** 20,),
                       overlap=2)
        assert one.key() != two.key()
        assert one.stage_key("lower") == two.stage_key("lower")

    def test_overlap_must_be_positive(self):
        with pytest.raises(ValueError, match="overlap"):
            Scenario(topology="ring:n=4", overlap=0)

    def test_two_copies_halve_throughput(self):
        plan_one = Plan(Scenario(topology="hypercube:dim=2", scheme="ewsp",
                                 fabric="ideal", buffers=(2 ** 20,)))
        plan_two = Plan(Scenario(topology="hypercube:dim=2", scheme="ewsp",
                                 fabric="ideal", buffers=(2 ** 20,), overlap=2))
        tp_one = plan_one.run().sim_results[0].throughput
        tp_two = plan_two.run().sim_results[0].throughput
        assert tp_two == pytest.approx(tp_one / 2, rel=1e-6)

    def test_per_collective_times_reported(self):
        plan = Plan(Scenario(topology="hypercube:dim=2", scheme="ewsp",
                             fabric="ideal", buffers=(2 ** 20,), overlap=3))
        result = plan.run().sim_results[0]
        times = result.per_collective_seconds
        assert len(times) == 3
        assert max(times) == pytest.approx(result.completion_time)

    def test_routed_overlap_meta(self):
        topo = from_spec("hypercube:dim=2")
        schedule = Plan(Scenario(topology=topo, scheme="ewsp")).run("lower").lowered
        res = run_routed_collective(schedule, buffer_bytes=2 ** 20,
                                    fabric=cerio_hpc_fabric(), overlap=2)
        assert len(res.meta["per_collective_seconds"]) == 2
        assert res.meta["fill_rounds"] >= 1

    def test_overlap_metrics_in_sweep_record(self):
        from repro.experiments import run_sweep

        scenario = Scenario(topology="hypercube:dim=2", scheme="ewsp",
                            buffers=(2 ** 20,), overlap=2)
        record = run_sweep([scenario])[0]
        assert record.status == "ok"
        assert record.metrics["sim_fill_rounds"] >= 1
        assert record.metrics["sim_events"] >= 1
        times = record.metrics["overlap_completion_seconds"][str(2 ** 20)]
        assert len(times) == 2


class TestEventQueue:
    """Regression tests for the scheduler edge cases the fault runner leans on."""

    def test_cancel_after_pop_is_noop_and_reports_false(self):
        from repro.simulator.events import EventQueue

        queue = EventQueue()
        fired = []
        first = queue.schedule(1.0, lambda: fired.append("first"))
        queue.schedule(2.0, lambda: fired.append("second"))
        assert queue.step()
        assert first.executed
        # Cancelling the already-popped event must not corrupt the queue.
        assert first.cancel() is False
        queue.run()
        assert fired == ["first", "second"]
        assert queue.processed == 2

    def test_cancel_before_pop_reports_true_and_skips(self):
        from repro.simulator.events import EventQueue

        queue = EventQueue()
        fired = []
        victim = queue.schedule(1.0, lambda: fired.append("victim"))
        queue.schedule(2.0, lambda: fired.append("kept"))
        assert victim.cancel() is True
        assert victim.cancel() is True  # idempotent while unexecuted
        queue.run()
        assert fired == ["kept"]
        assert queue.processed == 1

    def test_equal_timestamp_events_fire_in_insertion_order(self):
        from repro.simulator.events import EventQueue

        queue = EventQueue()
        fired = []
        # Scheduled out of lexical order on the same timestamp: insertion
        # order (the sequence counter) must win, deterministically.
        queue.schedule_at(5.0, lambda: fired.append("a"))
        queue.schedule_at(5.0, lambda: fired.append("b"))
        queue.schedule_at(3.0, lambda: fired.append("early"))
        queue.schedule_at(5.0, lambda: fired.append("c"))
        queue.run()
        assert fired == ["early", "a", "b", "c"]

    def test_cancel_from_inside_own_callback_reports_false(self):
        from repro.simulator.events import EventQueue

        queue = EventQueue()
        results = []
        holder = {}

        def callback():
            results.append(holder["event"].cancel())

        holder["event"] = queue.schedule(1.0, callback)
        queue.run()
        assert results == [False]

    def test_heap_stays_bounded_under_cancel_schedule_cycles(self):
        """Lazy compaction: dead entries never dominate a large heap.

        The fault runner's pattern — cancel the pending completion, schedule
        a replacement, thousands of times — used to grow the heap linearly
        with simulated time; the lazy sweep must keep it within a constant
        factor of the live event count.
        """
        from repro.simulator.events import EventQueue

        queue = EventQueue()
        live = [queue.schedule(float(i) + 1e6, lambda: None)
                for i in range(100)]
        pending = queue.schedule(1.0, lambda: None)
        for i in range(10_000):
            pending.cancel()
            pending = queue.schedule(float(i % 7) + 1.0, lambda: None)
        # 10k cancels against ~101 live events: without compaction the heap
        # holds ~10k dead entries; with it, dead can never exceed live + 1.
        assert len(queue) <= 2 * (len(live) + 1) + 1
        assert queue.compactions > 0
        assert not queue.empty()

    def test_compaction_preserves_order_and_pending_events(self):
        from repro.simulator.events import EventQueue

        queue = EventQueue()
        fired = []
        keep = [queue.schedule(float(t), lambda t=t: fired.append(t))
                for t in (5, 3, 9)]
        victim = queue.schedule(1.0, lambda: fired.append("victim"))
        for i in range(200):        # force several compaction sweeps
            victim.cancel()
            victim = queue.schedule(0.5, lambda: fired.append("victim"))
        victim.cancel()
        queue.run()
        assert fired == [3.0, 5.0, 9.0]
        assert queue.compactions > 0
        assert all(e.executed for e in keep)


class TestStepSimEdgeCases:
    def test_single_flow_schedule(self):
        """A schedule with exactly one send (satellite edge case)."""
        from repro.schedule import Chunk, LinkSchedule, LinkSendOp

        topo = ring(3)
        schedule = LinkSchedule(topo, 1, [LinkSendOp(Chunk(0, 1, 0.0, 1.0), 0, 1, 1)])
        fabric = FabricModel(link_bandwidth=100.0, per_step_latency=0.0,
                             per_message_overhead=0.0, nic_forwarding=False)
        res = simulate_link_schedule(schedule, shard_bytes=200.0, fabric=fabric)
        assert res.total_time == pytest.approx(2.0)
        assert res.fill_rounds >= 1

    def test_zero_byte_step_costs_latency_only(self):
        from repro.schedule import Chunk, LinkSchedule, LinkSendOp

        topo = ring(3)
        # hi == lo + 0 is invalid; use a tiny chunk and zero shard bytes.
        schedule = LinkSchedule(topo, 1, [LinkSendOp(Chunk(0, 1, 0.0, 1.0), 0, 1, 1)])
        fabric = FabricModel(link_bandwidth=100.0, per_step_latency=0.5,
                             per_message_overhead=0.25, nic_forwarding=False)
        res = simulate_link_schedule(schedule, shard_bytes=0.0, fabric=fabric)
        assert res.total_time == pytest.approx(0.75)

    def test_empty_step_contributes_nothing(self):
        from repro.schedule import Chunk, LinkSchedule, LinkSendOp

        topo = ring(3)
        schedule = LinkSchedule(topo, 2, [LinkSendOp(Chunk(0, 1, 0.0, 1.0), 0, 1, 2)])
        fabric = FabricModel(link_bandwidth=100.0, per_step_latency=0.5,
                             per_message_overhead=0.0, nic_forwarding=False)
        res = simulate_link_schedule(schedule, shard_bytes=100.0, fabric=fabric)
        assert res.step_times[0] == 0.0
        assert res.step_times[1] == pytest.approx(1.5)

    def test_down_link_in_schedule_rejected(self):
        from repro.schedule import Chunk, LinkSchedule, LinkSendOp

        topo = ring(3)
        schedule = LinkSchedule(topo, 1, [LinkSendOp(Chunk(0, 1, 0.0, 1.0), 0, 1, 1)])
        fabric = FabricModel(nic_forwarding=False).degrade(down_links=((0, 1),))
        with pytest.raises(ValueError, match="down link"):
            simulate_link_schedule(schedule, shard_bytes=100.0, fabric=fabric)

    def test_overlap_doubles_step_time(self):
        from repro.schedule import Chunk, LinkSchedule, LinkSendOp

        topo = ring(3)
        schedule = LinkSchedule(topo, 1, [LinkSendOp(Chunk(0, 1, 0.0, 1.0), 0, 1, 1)])
        fabric = FabricModel(link_bandwidth=100.0, per_step_latency=0.0,
                             per_message_overhead=0.0, nic_forwarding=False)
        one = simulate_link_schedule(schedule, 100.0, fabric, overlap=1)
        two = simulate_link_schedule(schedule, 100.0, fabric, overlap=2)
        assert two.total_time == pytest.approx(2 * one.total_time)


class TestGoldenPanels:
    """Fig. 4 / Table 1 panels must match the pre-refactor simulator byte-for-byte."""

    BUFFERS = (2 ** 15, 2 ** 19)

    def test_fig4_twisted_matches_golden_file(self):
        from repro.report.specs import FIG4, run_panel

        data = run_panel(FIG4, FIG4.panel("twisted"), buffers=self.BUFFERS)
        assert data.tables[0].text + "\n" == (GOLDEN / "fig4_twisted.txt").read_text()

    def test_table1_matches_golden_file(self):
        from repro.report.specs import TABLE1, run_panel

        data = run_panel(TABLE1, TABLE1.panel("forwarding"))
        expected = (GOLDEN / "table1_forwarding.txt").read_text()
        assert "\n\n".join(t.text for t in data.tables) + "\n" == expected


class TestFooter:
    def test_footer_includes_sim_counters(self):
        from repro.analysis import format_engine_footer

        line = format_engine_footer(
            {"hits": 1, "misses": 2, "disk_hits": 0, "backend": "x"},
            {"hits": 3, "misses": 4},
            sim_stats={"fill_rounds": 10, "events": 5})
        assert "sim: 10 fill rounds / 5 events" in line

    def test_simulate_cli_prints_sim_counters(self, capsys):
        from repro.cli import main

        assert main(["simulate", "ring:n=4", "--scheme", "ewsp",
                     "--buffers", "1048576"]) == 0
        captured = capsys.readouterr()
        assert "throughput" in captured.out
        assert "fill rounds" in captured.err

    def test_simulate_cli_jsonl_roundtrip(self, tmp_path, capsys):
        from repro.cli import main

        out = str(tmp_path / "sim.jsonl")
        args = ["simulate", "ring:n=4", "--scheme", "ewsp", "--overlap", "2",
                "--buffers", "1048576", "--out", out]
        assert main(args) == 0
        capsys.readouterr()
        assert main(args + ["--resume"]) == 0
        assert "resumed" in capsys.readouterr().out
        assert len(open(out).readlines()) == 1

    def test_simulate_cli_degraded_error_exit_code(self, capsys):
        from repro.cli import main

        assert main(["simulate", "ring:n=4", "--scheme", "ewsp",
                     "--fabric", "hpc:down=0~1", "--buffers", "1048576"]) == 1
        assert "down link" in capsys.readouterr().out
