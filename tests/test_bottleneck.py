"""Tests for host-to-NIC bottleneck augmentation (§3.2.2, Fig. 2)."""

import pytest

from repro.core import (
    augment_host_nic_bottleneck,
    project_flow_to_hosts,
    solve_link_mcf,
    solve_master_lp,
)
from repro.topology import ring, torus


class TestAugmentation:
    def test_structure(self, cube3):
        aug = augment_host_nic_bottleneck(cube3, host_bandwidth=2.0, link_bandwidth=1.0)
        n = cube3.num_nodes
        assert aug.topology.num_nodes == 3 * n
        # Host<->NIC edges: 2 per node; NIC-NIC edges: one per original edge.
        assert aug.topology.num_edges == 2 * n + cube3.num_edges
        assert list(aug.host_nodes()) == list(range(n))

    def test_capacities(self, cube3):
        aug = augment_host_nic_bottleneck(cube3, host_bandwidth=4.0, link_bandwidth=1.0)
        host = 0
        assert aug.topology.capacity(aug.nic_in[host], host) == 4.0
        assert aug.topology.capacity(host, aug.nic_out[host]) == 4.0
        # NIC-NIC edge inherits the physical capacity times link bandwidth.
        u, v = cube3.edges[0]
        assert aug.topology.capacity(aug.nic_out[u], aug.nic_in[v]) == 1.0

    def test_invalid_bandwidths(self, cube3):
        with pytest.raises(ValueError):
            augment_host_nic_bottleneck(cube3, host_bandwidth=0.0)
        with pytest.raises(ValueError):
            augment_host_nic_bottleneck(cube3, host_bandwidth=1.0, link_bandwidth=-1.0)

    def test_no_direct_nic_to_nic_bypass_of_host(self, cube3):
        # Data arriving at NIC_in(i) can only continue via Host(i): NIC_in has a
        # single outgoing edge (to the host).
        aug = augment_host_nic_bottleneck(cube3, host_bandwidth=2.0)
        for i in range(cube3.num_nodes):
            assert aug.topology.out_edges(aug.nic_in[i]) == [(aug.nic_in[i], i)]
            assert aug.topology.in_edges(aug.nic_out[i]) == [(i, aug.nic_out[i])]


class TestBottleneckedMCF:
    def test_paper_torus_value(self, torus333):
        """The paper's 3x3x3 torus example: f = 2/27 bottlenecked vs 1/9 otherwise.

        Injection 100 Gbps vs 6 x 25 Gbps NIC bandwidth -> host bandwidth is 4
        link units.
        """
        aug = augment_host_nic_bottleneck(torus333, host_bandwidth=4.0, link_bandwidth=1.0)
        master_value = solve_master_lp(aug.topology,
                                       terminals=list(aug.host_nodes())).concurrent_flow
        assert master_value == pytest.approx(2.0 / 27.0, rel=1e-3)

    def test_unbottlenecked_torus_value(self, torus333):
        value = solve_master_lp(torus333).concurrent_flow
        assert value == pytest.approx(1.0 / 9.0, rel=1e-3)

    def test_bottleneck_never_increases_flow(self, cube3):
        base = solve_master_lp(cube3).concurrent_flow
        aug = augment_host_nic_bottleneck(cube3, host_bandwidth=1.5)
        bottlenecked = solve_master_lp(aug.topology,
                                       terminals=list(aug.host_nodes())).concurrent_flow
        assert bottlenecked <= base + 1e-6

    def test_generous_host_bandwidth_recovers_base_flow(self, cube3):
        base = solve_master_lp(cube3).concurrent_flow
        aug = augment_host_nic_bottleneck(cube3, host_bandwidth=100.0)
        relaxed = solve_master_lp(aug.topology,
                                  terminals=list(aug.host_nodes())).concurrent_flow
        assert relaxed == pytest.approx(base, rel=1e-4)


class TestProjection:
    def test_project_flow_back_to_physical_links(self):
        topo = ring(4)
        aug = augment_host_nic_bottleneck(topo, host_bandwidth=0.5)
        solution = solve_link_mcf(aug.topology)
        projected = project_flow_to_hosts(aug, solution)
        # Only host-to-host commodities remain and edges are physical.
        for (s, d), per in projected.flows.items():
            assert s < 4 and d < 4
            for (u, v) in per:
                assert topo.has_edge(u, v)
        assert projected.concurrent_flow == solution.concurrent_flow
