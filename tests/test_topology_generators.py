"""Tests for the topology generators (Kautz, torus, hypercube, expanders, ...)."""

import math

import pytest

from repro.topology import (
    bidirectional_ring,
    chain,
    complete,
    complete_bipartite,
    coordinate_of,
    dragonfly,
    edge_punctured_torus,
    generalized_de_bruijn,
    generalized_kautz,
    hypercube,
    jellyfish,
    kautz,
    mesh,
    node_of,
    node_punctured_torus,
    random_regular,
    ring,
    torus,
    torus_2d,
    torus_3d,
    twisted_hypercube,
    xpander,
)


class TestGeneralizedKautz:
    @pytest.mark.parametrize("degree,n", [(2, 6), (3, 10), (4, 16), (4, 25), (3, 11)])
    def test_out_degree_at_most_d(self, degree, n):
        topo = generalized_kautz(degree, n)
        assert topo.num_nodes == n
        assert all(topo.out_degree(u) <= degree for u in topo.nodes)
        # Imase-Itoh only degenerates on a handful of nodes.
        assert sum(topo.out_degree(u) for u in topo.nodes) >= degree * n - 2 * degree

    @pytest.mark.parametrize("degree,n", [(2, 8), (3, 12), (4, 20), (4, 100)])
    def test_strongly_connected(self, degree, n):
        assert generalized_kautz(degree, n).is_strongly_connected()

    @pytest.mark.parametrize("degree,n", [(2, 12), (3, 36), (4, 80)])
    def test_diameter_logarithmic(self, degree, n):
        topo = generalized_kautz(degree, n)
        assert topo.diameter() <= math.ceil(math.log(n, degree)) + 1

    def test_construction_rule(self):
        # GK(d, N): u -> (-d*u - j) mod N for j = 1..d.
        topo = generalized_kautz(2, 7)
        assert topo.has_edge(0, (-1) % 7)
        assert topo.has_edge(0, (-2) % 7)
        assert topo.has_edge(3, (-2 * 3 - 1) % 7)

    def test_any_n_d_coverage(self):
        # The selling point of the family: an instance exists for every (N, d).
        for n in range(5, 30):
            topo = generalized_kautz(4, n)
            assert topo.is_strongly_connected()

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            generalized_kautz(0, 10)
        with pytest.raises(ValueError):
            generalized_kautz(2, 1)

    def test_matches_classic_kautz_size(self):
        classic = kautz(2, 2)           # (d+1)*d^(k-1) = 6 nodes
        assert classic.num_nodes == 6
        assert classic.degree() == 2
        assert classic.is_strongly_connected()


class TestGeneralizedDeBruijn:
    @pytest.mark.parametrize("degree,n", [(2, 8), (3, 12), (4, 17)])
    def test_basic(self, degree, n):
        topo = generalized_de_bruijn(degree, n)
        assert topo.num_nodes == n
        assert topo.is_strongly_connected()
        assert all(topo.out_degree(u) <= degree for u in topo.nodes)


class TestTorus:
    def test_3d_torus_shape(self):
        topo = torus_3d(3)
        assert topo.num_nodes == 27
        assert topo.degree() == 6
        assert topo.is_bidirectional()
        assert topo.diameter() == 3

    def test_2d_torus_shape(self):
        topo = torus_2d(4)
        assert topo.num_nodes == 16
        assert topo.degree() == 4
        assert topo.diameter() == 4

    def test_dimension_of_size_two_has_single_link(self):
        topo = torus([2, 3])
        # Along the size-2 dimension the wrap edge coincides with the direct one.
        assert topo.out_degree(0) == 3

    def test_mesh_no_wraparound(self):
        m = mesh([3, 3])
        corner_degree = m.out_degree(0)
        assert corner_degree == 2
        assert m.diameter() == 4

    def test_coordinate_roundtrip(self):
        dims = (3, 4, 5)
        for node in range(3 * 4 * 5):
            assert node_of(coordinate_of(node, dims), dims) == node

    def test_coordinate_out_of_bounds(self):
        with pytest.raises(ValueError):
            node_of((3, 0), (3, 3))

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            torus([1, 3])


class TestPuncturedTorus:
    def test_edge_punctured_removes_links(self):
        base = torus([3, 3, 3])
        topo = edge_punctured_torus([3, 3, 3], num_removed=3, seed=1)
        assert topo.num_edges == base.num_edges - 6  # 3 bidirectional links
        assert topo.is_strongly_connected()
        assert topo.num_nodes == 27

    def test_edge_punctured_deterministic_per_seed(self):
        a = edge_punctured_torus([3, 3], num_removed=2, seed=5)
        b = edge_punctured_torus([3, 3], num_removed=2, seed=5)
        assert a.edges == b.edges

    def test_edge_punctured_seeds_differ(self):
        a = edge_punctured_torus([3, 3, 3], num_removed=3, seed=0)
        b = edge_punctured_torus([3, 3, 3], num_removed=3, seed=1)
        assert a.edges != b.edges

    def test_node_punctured(self):
        topo = node_punctured_torus([3, 3, 3], num_removed=3, seed=2)
        assert topo.num_nodes == 24
        assert topo.is_strongly_connected()

    def test_too_many_removals_rejected(self):
        with pytest.raises(ValueError):
            edge_punctured_torus([2, 2], num_removed=100)


class TestHypercube:
    def test_hypercube_properties(self):
        topo = hypercube(4)
        assert topo.num_nodes == 16
        assert topo.degree() == 4
        assert topo.diameter() == 4
        assert topo.is_bidirectional()

    def test_hypercube_edges_flip_single_bit(self):
        topo = hypercube(3)
        for u, v in topo.edges:
            assert bin(u ^ v).count("1") == 1

    def test_twisted_hypercube_same_size_and_degree(self):
        topo = twisted_hypercube(3)
        assert topo.num_nodes == 8
        assert topo.degree() == 3
        assert topo.is_bidirectional()
        assert topo.is_strongly_connected()

    def test_twisted_hypercube_differs_from_hypercube(self):
        assert set(twisted_hypercube(3).edges) != set(hypercube(3).edges)

    def test_invalid_dimension(self):
        with pytest.raises(ValueError):
            hypercube(0)
        with pytest.raises(ValueError):
            twisted_hypercube(1)


class TestBipartiteAndMisc:
    def test_complete_bipartite(self):
        topo = complete_bipartite(4, 4)
        assert topo.num_nodes == 8
        assert topo.degree() == 4
        assert topo.diameter() == 2
        # No edges within a side.
        assert not topo.has_edge(0, 1)
        assert topo.has_edge(0, 4)

    def test_complete_bipartite_asymmetric(self):
        topo = complete_bipartite(2, 3)
        assert topo.out_degree(0) == 3
        assert topo.out_degree(4) == 2

    def test_ring_and_chain(self):
        assert ring(6).degree() == 1
        assert bidirectional_ring(6).degree() == 2
        assert chain(5).diameter() == 4

    def test_complete(self):
        topo = complete(6)
        assert topo.num_edges == 30
        assert topo.degree() == 5

    def test_dragonfly(self):
        topo = dragonfly(groups=4, routers_per_group=4)
        assert topo.num_nodes == 16
        assert topo.is_strongly_connected()

    def test_dragonfly_invalid(self):
        with pytest.raises(ValueError):
            dragonfly(1, 4)


class TestExpanders:
    def test_xpander_size_and_degree(self):
        topo = xpander(degree=3, lift=4, seed=0)
        assert topo.num_nodes == 16
        assert topo.degree() == 3
        assert topo.is_strongly_connected()

    def test_xpander_deterministic(self):
        assert xpander(3, 5, seed=7).edges == xpander(3, 5, seed=7).edges

    def test_random_regular(self):
        topo = random_regular(3, 12, seed=0)
        assert topo.num_nodes == 12
        assert topo.degree() == 3
        assert topo.is_strongly_connected()

    def test_random_regular_handshake_violation(self):
        with pytest.raises(ValueError):
            random_regular(3, 9)

    def test_jellyfish_alias(self):
        topo = jellyfish(4, 10, seed=1)
        assert topo.metadata["family"] == "jellyfish"
        assert topo.degree() == 4
