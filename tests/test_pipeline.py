"""Tests for the Fig. 1 schedule-generation pipeline (repro.core.pipeline)."""

import pytest

from repro.core import (
    ForwardingModel,
    SchedulingRequest,
    estimate_path_diversity,
    generate_schedule,
)
from repro.core.mcf_path import PathSchedule
from repro.core.mcf_timestepped import TimeSteppedFlow
from repro.topology import torus_2d


class TestPathDiversity:
    def test_expander_low_diversity(self, genkautz_3_10):
        assert estimate_path_diversity(genkautz_3_10) < 4.0

    def test_torus_higher_diversity_than_expander(self, genkautz_3_10):
        torus = torus_2d(4)
        assert estimate_path_diversity(torus) > estimate_path_diversity(genkautz_3_10)

    def test_sampling_is_deterministic(self, genkautz_4_16):
        a = estimate_path_diversity(genkautz_4_16, sample=16, seed=3)
        b = estimate_path_diversity(genkautz_4_16, sample=16, seed=3)
        assert a == b


class TestHostForwarding:
    def test_host_forwarding_returns_timestepped_flow(self, cube3):
        request = SchedulingRequest(forwarding=ForwardingModel.HOST)
        schedule = generate_schedule(cube3, request)
        assert isinstance(schedule, TimeSteppedFlow)
        assert schedule.total_utilization == pytest.approx(4.0, rel=1e-3)

    def test_host_bottleneck_triggers_augmentation(self, cube3):
        request = SchedulingRequest(forwarding=ForwardingModel.HOST,
                                    host_bandwidth=1.5, link_bandwidth=1.0)
        schedule = generate_schedule(cube3, request)
        assert isinstance(schedule, TimeSteppedFlow)
        assert schedule.meta.get("augmented") is True
        assert schedule.meta["num_hosts"] == 8
        # The augmented graph has 3N nodes.
        assert schedule.topology.num_nodes == 24

    def test_generous_host_bandwidth_skips_augmentation(self, cube3):
        request = SchedulingRequest(forwarding=ForwardingModel.HOST,
                                    host_bandwidth=10.0, link_bandwidth=1.0)
        schedule = generate_schedule(cube3, request)
        assert schedule.topology.num_nodes == 8
        assert "augmented" not in schedule.meta

    def test_host_bandwidth_equal_to_aggregate_skips_augmentation(self, cube3):
        # The augmentation triggers strictly below the NIC aggregate (3 links
        # at capacity 1.0), so exactly-matching host bandwidth is a no-op.
        request = SchedulingRequest(forwarding=ForwardingModel.HOST,
                                    host_bandwidth=3.0, link_bandwidth=1.0)
        schedule = generate_schedule(cube3, request)
        assert schedule.topology.num_nodes == 8
        assert "augmented" not in schedule.meta

    def test_decomposed_ts_branch_matches_monolithic(self, cube3):
        mono = generate_schedule(cube3, SchedulingRequest(
            forwarding=ForwardingModel.HOST))
        deco = generate_schedule(cube3, SchedulingRequest(
            forwarding=ForwardingModel.HOST, decompose_ts=True))
        assert isinstance(deco, TimeSteppedFlow)
        assert deco.total_utilization == pytest.approx(mono.total_utilization, rel=1e-6)

    def test_decomposed_ts_branch_with_augmentation(self, cube3):
        schedule = generate_schedule(cube3, SchedulingRequest(
            forwarding=ForwardingModel.HOST, decompose_ts=True,
            host_bandwidth=1.5, link_bandwidth=1.0))
        assert schedule.meta.get("augmented") is True
        assert schedule.topology.num_nodes == 24

    def test_num_steps_override_is_honored(self, cube3):
        schedule = generate_schedule(cube3, SchedulingRequest(
            forwarding=ForwardingModel.HOST, num_steps=5))
        assert schedule.num_steps == 5


class TestNicForwarding:
    def test_low_diversity_uses_pmcf(self, genkautz_3_10):
        request = SchedulingRequest(forwarding=ForwardingModel.NIC,
                                    path_diversity_threshold=4.0)
        schedule = generate_schedule(genkautz_3_10, request)
        assert isinstance(schedule, PathSchedule)
        assert schedule.meta["pipeline"] == "pmcf-disjoint"

    def test_high_diversity_uses_mcf_extp(self):
        torus = torus_2d(3)
        request = SchedulingRequest(forwarding=ForwardingModel.NIC,
                                    path_diversity_threshold=1.5)
        schedule = generate_schedule(torus, request)
        assert isinstance(schedule, PathSchedule)
        assert schedule.meta["pipeline"] == "mcf-extp"

    def test_threshold_flips_branch_on_same_topology(self, genkautz_3_10):
        # The same topology goes down either branch depending on where the
        # path-diversity threshold sits relative to its measured diversity.
        diversity = estimate_path_diversity(genkautz_3_10)
        below = generate_schedule(genkautz_3_10, SchedulingRequest(
            forwarding=ForwardingModel.NIC, path_diversity_threshold=diversity - 0.01))
        above = generate_schedule(genkautz_3_10, SchedulingRequest(
            forwarding=ForwardingModel.NIC, path_diversity_threshold=diversity + 0.01))
        assert below.meta["pipeline"] == "mcf-extp"
        assert above.meta["pipeline"] == "pmcf-disjoint"

    def test_max_disjoint_paths_caps_candidates(self, bipartite44):
        schedule = generate_schedule(bipartite44, SchedulingRequest(
            forwarding=ForwardingModel.NIC, path_diversity_threshold=100.0,
            max_disjoint_paths=1))
        assert isinstance(schedule, PathSchedule)
        assert all(len(paths) <= 1 for paths in schedule.paths.values())

    def test_default_request_is_nic(self, genkautz_3_10):
        schedule = generate_schedule(genkautz_3_10)
        assert isinstance(schedule, PathSchedule)

    def test_both_branches_reach_near_optimal_flow(self, bipartite44):
        from repro.core import solve_decomposed_mcf

        optimal = solve_decomposed_mcf(bipartite44).concurrent_flow
        pmcf = generate_schedule(bipartite44, SchedulingRequest(
            forwarding=ForwardingModel.NIC, path_diversity_threshold=100.0))
        extp = generate_schedule(bipartite44, SchedulingRequest(
            forwarding=ForwardingModel.NIC, path_diversity_threshold=0.0))
        assert pmcf.concurrent_flow >= 0.9 * optimal
        assert extp.concurrent_flow == pytest.approx(optimal, rel=1e-4)
