"""Tests for the decomposed time-stepped MCF (§3.1.3, decomposition remark)."""

import pytest

from repro.core import (
    augment_host_nic_bottleneck,
    solve_timestepped_mcf,
    solve_timestepped_mcf_decomposed,
)
from repro.schedule import chunk_timestepped_flow, validate_link_schedule
from repro.topology import Topology, bidirectional_ring, complete, complete_bipartite, hypercube, ring


class TestOptimality:
    @pytest.mark.parametrize("make_topo,expected_util", [
        (lambda: complete(4), 1.0),
        (lambda: ring(4), 6.0),
        (lambda: complete_bipartite(4, 4), 2.5),
        (lambda: hypercube(3), 4.0),
    ])
    def test_matches_monolithic_optimum(self, make_topo, expected_util):
        topo = make_topo()
        decomposed = solve_timestepped_mcf_decomposed(topo)
        assert decomposed.total_utilization == pytest.approx(expected_util, rel=1e-4)

    def test_agrees_with_monolithic_on_asymmetric_topology(self):
        # A topology with no closed-form optimum: both formulations must agree.
        topo = bidirectional_ring(5)
        mono = solve_timestepped_mcf(topo)
        decomposed = solve_timestepped_mcf_decomposed(topo)
        assert decomposed.total_utilization == pytest.approx(mono.total_utilization, rel=1e-4)


class TestSolutionStructure:
    @pytest.fixture(scope="class")
    def cube_flow(self):
        return solve_timestepped_mcf_decomposed(hypercube(3))

    def test_every_commodity_delivered(self, cube_flow):
        for s, d in cube_flow.topology.commodities():
            assert cube_flow.delivered_fraction(s, d) == pytest.approx(1.0, abs=1e-5)

    def test_causality(self, cube_flow):
        topo = cube_flow.topology
        for (s, d), per in cube_flow.flows.items():
            for u in topo.nodes:
                if u in (s, d):
                    continue
                for t in range(1, cube_flow.num_steps + 1):
                    sent = sum(v for (a, b, tt), v in per.items() if a == u and tt <= t)
                    recv = sum(v for (a, b, tt), v in per.items() if b == u and tt < t)
                    assert sent <= recv + 1e-6

    def test_chunks_to_valid_link_schedule(self, cube_flow):
        schedule = chunk_timestepped_flow(cube_flow)
        validate_link_schedule(schedule)

    def test_timing_breakdown_recorded(self, cube_flow):
        assert cube_flow.meta["method"] == "tsmcf-decomposed"
        assert cube_flow.meta["master_seconds"] > 0
        assert len(cube_flow.meta["child_seconds_each"]) == 8

    def test_master_variable_count_smaller_than_monolithic(self):
        # The point of the decomposition: grouped variables scale with N, not N^2.
        topo = hypercube(3)
        mono = solve_timestepped_mcf(topo)
        assert mono.meta["num_variables"] > topo.num_nodes * topo.num_edges


class TestTerminals:
    def test_augmented_topology_host_exchange(self):
        topo = bidirectional_ring(4)
        aug = augment_host_nic_bottleneck(topo, host_bandwidth=1.0)
        hosts = list(aug.host_nodes())
        decomposed = solve_timestepped_mcf_decomposed(aug.topology, terminals=hosts)
        mono = solve_timestepped_mcf(aug.topology, terminals=hosts)
        assert decomposed.total_utilization == pytest.approx(mono.total_utilization, rel=1e-3)
        for s in hosts:
            for d in hosts:
                if s != d:
                    assert decomposed.delivered_fraction(s, d) == pytest.approx(1.0, abs=1e-5)

    def test_rejects_disconnected(self):
        topo = Topology.from_edges(4, [(0, 1), (1, 0), (2, 3), (3, 2)])
        with pytest.raises(ValueError):
            solve_timestepped_mcf_decomposed(topo)

    def test_rejects_too_few_steps(self):
        with pytest.raises(ValueError):
            solve_timestepped_mcf_decomposed(hypercube(3), num_steps=1)
