"""Tests for MCF-extP widest-path extraction (§3.2.1)."""

import pytest

from repro.core import extract_paths, solve_decomposed_mcf, solve_mcf_extract_paths


class TestExtraction:
    def test_extraction_preserves_concurrent_flow(self, cube3_decomposed_mcf):
        schedule = extract_paths(cube3_decomposed_mcf)
        assert schedule.concurrent_flow == cube3_decomposed_mcf.concurrent_flow

    def test_extracted_paths_deliver_f_per_commodity(self, cube3_decomposed_mcf):
        schedule = extract_paths(cube3_decomposed_mcf)
        f = schedule.concurrent_flow
        for c in schedule.topology.commodities():
            assert schedule.delivered(*c) >= f - 1e-6

    def test_extracted_paths_respect_capacity(self, cube3_decomposed_mcf):
        schedule = extract_paths(cube3_decomposed_mcf)
        assert schedule.max_link_utilization() <= 1.0 + 1e-6

    def test_paths_connect_correct_endpoints(self, genkautz_extp):
        for (s, d), plist in genkautz_extp.paths.items():
            assert plist, f"no paths for {(s, d)}"
            for p in plist:
                assert p.source == s and p.destination == d
                assert p.weight > 0

    def test_paths_sorted_by_decreasing_rate(self, genkautz_extp):
        for plist in genkautz_extp.paths.values():
            weights = [p.weight for p in plist]
            assert weights == sorted(weights, reverse=True)

    def test_paths_are_simple(self, genkautz_extp):
        for plist in genkautz_extp.paths.values():
            for p in plist:
                assert len(set(p.nodes)) == len(p.nodes), f"non-simple path {p.nodes}"

    def test_paths_use_existing_links(self, genkautz_extp):
        topo = genkautz_extp.topology
        for plist in genkautz_extp.paths.values():
            for p in plist:
                for u, v in p.edges:
                    assert topo.has_edge(u, v)

    def test_min_weight_filter(self, cube3_decomposed_mcf):
        coarse = extract_paths(cube3_decomposed_mcf, min_weight=1e-3)
        for plist in coarse.paths.values():
            for p in plist:
                assert p.weight >= 1e-3 or p.weight == coarse.concurrent_flow


class TestEndToEnd:
    def test_mcf_extp_on_torus_matches_optimum(self, torus33):
        optimal = solve_decomposed_mcf(torus33).concurrent_flow
        schedule = solve_mcf_extract_paths(torus33)
        assert schedule.concurrent_flow == pytest.approx(optimal, rel=1e-5)
        assert schedule.min_delivered() >= optimal - 1e-5

    def test_metadata_identifies_method(self, genkautz_extp):
        assert genkautz_extp.meta["method"] == "mcf-extp"
        assert "extraction_seconds" in genkautz_extp.meta

    def test_extraction_faster_than_solve(self, genkautz_extp):
        # Widest-path extraction is a small fraction of the total pipeline cost.
        assert genkautz_extp.meta["extraction_seconds"] <= genkautz_extp.solve_seconds
