"""Tests for schedule statistics (repro.schedule.stats)."""

import pytest

from repro.schedule import (
    Chunk,
    LinkSchedule,
    LinkSendOp,
    RouteAssignment,
    RoutedSchedule,
    link_schedule_stats,
    routed_schedule_stats,
)
from repro.topology import complete, hypercube


class TestLinkScheduleStats:
    def test_direct_exchange_stats(self):
        topo = complete(3)
        ops = [LinkSendOp(Chunk(s, d, 0.0, 1.0), s, d, 1) for s, d in topo.commodities()]
        stats = link_schedule_stats(LinkSchedule(topo, 1, ops))
        assert stats.num_steps == 1
        assert stats.num_operations == 6
        assert stats.operations_per_rank_max == 2
        assert stats.total_fraction_moved == pytest.approx(6.0)
        assert stats.forwarded_fraction == 0.0          # no relaying in a complete graph
        assert stats.load_imbalance == pytest.approx(1.0)
        assert stats.max_step_link_fraction == pytest.approx(1.0)

    def test_forwarding_counted(self, cube3_link_schedule):
        stats = link_schedule_stats(cube3_link_schedule)
        # Diameter-3 topology must forward something.
        assert stats.forwarded_fraction > 0
        assert stats.num_operations == len(cube3_link_schedule.operations)
        assert stats.load_imbalance >= 1.0

    def test_optimal_schedule_is_balanced(self, cube3_link_schedule):
        # The tsMCF schedule on the symmetric hypercube loads links evenly.
        stats = link_schedule_stats(cube3_link_schedule)
        assert stats.load_imbalance == pytest.approx(1.0, abs=0.05)

    def test_empty_schedule(self):
        stats = link_schedule_stats(LinkSchedule(complete(3), 1, []))
        assert stats.num_operations == 0
        assert stats.load_imbalance == 0.0


class TestRoutedScheduleStats:
    def test_basic_counts(self):
        topo = hypercube(2)
        assignments = [
            RouteAssignment(Chunk(0, 3, 0.0, 0.5), (0, 1, 3), layer=0),
            RouteAssignment(Chunk(0, 3, 0.5, 1.0), (0, 2, 3), layer=1),
            RouteAssignment(Chunk(1, 2, 0.0, 1.0), (1, 0, 2), layer=0),
        ]
        stats = routed_schedule_stats(RoutedSchedule(topo, assignments))
        assert stats.num_assignments == 3
        assert stats.num_distinct_routes == 3
        assert stats.num_layers == 2
        assert stats.max_route_hops == 2
        assert stats.mean_route_hops == pytest.approx(2.0)
        assert stats.queue_pairs_per_rank_max == 2      # rank 0 opens two chunk flows

    def test_generated_schedule_stats(self, genkautz_routed_schedule):
        stats = routed_schedule_stats(genkautz_routed_schedule)
        n = genkautz_routed_schedule.topology.num_nodes
        assert stats.num_assignments >= n * (n - 1)
        assert stats.queue_pairs_per_rank_max >= n - 1
        assert 1.0 <= stats.load_imbalance <= 3.0
        assert stats.max_route_hops <= 2 * genkautz_routed_schedule.topology.diameter()

    def test_empty_schedule(self):
        stats = routed_schedule_stats(RoutedSchedule(hypercube(2), []))
        assert stats.num_assignments == 0
        assert stats.num_layers == 0
