"""Tests for the reproduction-report subsystem (specs, render, provenance).

Covers the registry contract (every spec renders in ``--fast`` mode), the
provenance block schema, the CSV/Markdown fallback when matplotlib is absent,
and — the drift guard — byte-identical golden tables for the refactored
Fig. 3 / Fig. 4 / Table 1 benchmarks versus the pre-registry hand-rolled
constructions.
"""

import os

import pytest

from repro.analysis import format_table, format_throughput_sweep
from repro.cli import main
from repro.experiments import Plan, Scenario
from repro.report import (
    REGISTRY,
    available_specs,
    collect_provenance,
    format_provenance,
    generate_report,
    get_spec,
    run_panel,
)
from repro.report.aggregate import Plot, SpecResult, Table, make_table
from repro.report.specs import FIG3, FIG4, TABLE1
from repro.report.render import render_spec
from repro.simulator import a100_ml_fabric, cerio_hpc_fabric, steady_state_throughput
from repro.topology import from_spec

SMALL_BUFFERS = (2 ** 15, 2 ** 19)


class TestRegistry:
    def test_paper_artifacts_registered(self):
        for spec_id in ("fig3", "fig4", "fig7", "fig10", "table1"):
            assert spec_id in REGISTRY
        assert available_specs() == list(REGISTRY)

    def test_unknown_spec_rejected(self):
        with pytest.raises(KeyError):
            get_spec("fig99")

    def test_scenarios_carry_routable_names(self):
        for spec in REGISTRY.values():
            for scenario in spec.scenarios(fast=True):
                spec_id, panel_key, label = scenario.name.split("/", 2)
                assert spec_id == spec.spec_id
                assert spec.panel(panel_key).key == panel_key
                assert label

    def test_every_spec_renders_in_fast_mode(self, tmp_path):
        """The acceptance gate: the whole registry completes a --fast report."""
        summary = generate_report(out_dir=str(tmp_path), fast=True, jobs=2)
        assert summary.errors == []
        index = (tmp_path / "index.md").read_text()
        for spec_id, spec in REGISTRY.items():
            assert f"## {spec_id} — {spec.title}" in index
        # Every artifact wrote at least one CSV data file.
        for art in summary.rendered:
            csvs = [f for f in art.files if f.endswith(".csv")]
            assert csvs, f"{art.spec_id} rendered no CSV fallback"
            assert all(os.path.exists(f) for f in art.files)
        # Sweep records streamed under data/ for resume.
        for spec_id in REGISTRY:
            assert (tmp_path / "data" / f"{spec_id}.jsonl").exists()


class TestProvenance:
    def test_block_schema(self):
        prov = collect_provenance(
            artifacts=[{"spec_id": "fig3", "kind": "figure", "status": "ok",
                        "seconds": 1.25, "num_scenarios": 4}],
            engine_stats={"backend": "scipy-highs", "hits": 3, "misses": 2,
                          "disk_hits": 1, "stores": 2},
            stage_stats={"hits": 5, "misses": 4, "disk_hits": 0, "stores": 4},
            fast=True)
        for key in ("schema_version", "generated_at", "git", "package_version",
                    "python", "platform", "dependencies", "solver_backend",
                    "artifacts", "lp_cache", "stage_cache", "new_lp_solves"):
            assert key in prov, key
        assert prov["new_lp_solves"] == 2
        assert prov["git"]["sha"]          # real repo: a SHA, never empty
        assert prov["dependencies"]["scipy"] != "absent"

    def test_markdown_rendering_is_grep_stable(self):
        prov = collect_provenance(
            artifacts=[{"spec_id": "table1", "kind": "table", "status": "ok",
                        "seconds": 0.5, "num_scenarios": 2}],
            engine_stats={"backend": "scipy-highs", "hits": 0, "misses": 0,
                          "disk_hits": 0, "stores": 0},
            stage_stats={"hits": 2, "misses": 0, "disk_hits": 2, "stores": 0})
        text = format_provenance(prov)
        assert "git SHA" in text
        assert "new LP solves: 0" in text          # the CI warm-cache gate
        assert "| table1 | table | ok |" in text


class TestRenderFallback:
    def _spec_result(self):
        table = make_table("t", "A table", ["x", "y"], [[1, 2.0]])
        plot = Plot(name="demo_plot", title="Demo", x_label="x", y_label="y",
                    x=[1.0, 2.0], series={"s": [1.0, 2.0]})
        return SpecResult(spec_id="demo", kind="figure", title="Demo spec",
                          description="d", tables=[table], plots=[plot])

    def test_csv_fallback_when_matplotlib_absent(self, tmp_path, monkeypatch):
        from repro.report import render

        def _no_mpl():
            raise ImportError("matplotlib intentionally absent")

        monkeypatch.setattr(render, "_import_pyplot", _no_mpl)
        art = render_spec(self._spec_result(), str(tmp_path))
        assert art.figure_backend == "fallback"
        assert "matplotlib unavailable" in art.section
        assert not list(tmp_path.glob("*.png"))
        csv_path = tmp_path / "demo__t.csv"
        assert csv_path.read_text().splitlines() == ["x,y", "1,2.0"]
        assert "A table" in art.section

    def test_tables_always_embedded(self, tmp_path):
        art = render_spec(self._spec_result(), str(tmp_path))
        assert "```text" in art.section
        assert format_table(["x", "y"], [[1, 2.0]], title="A table") in art.section


class TestGoldenTables:
    """The refactored benchmarks must reproduce the hand-rolled PR-3 tables."""

    def test_fig3_bipartite_byte_identical(self):
        # Hand-rolled construction, verbatim from the pre-registry benchmark.
        fabric = a100_ml_fabric()

        class _Fake:
            def __init__(self, buf, tp):
                self.buffer_bytes = buf
                self.throughput = tp

        spec = "bipartite:left=4,right=4"
        ts = Plan(Scenario(topology=spec, fabric="ml", scheme="tsmcf",
                           buffers=SMALL_BUFFERS)).run()
        flow_value = ts.concurrent_flow
        bound = steady_state_throughput(ts.schedule.topology.num_nodes,
                                        flow_value, fabric)
        results = {
            "Upper Bound": [_Fake(b, bound) for b in SMALL_BUFFERS],
            "tsMCF/G": ts.sim_results,
        }
        taccl = Plan(Scenario(topology=spec, fabric="ml", scheme="taccl",
                              buffers=SMALL_BUFFERS)).run()
        results["TACCL/G"] = taccl.sim_results
        expected = format_throughput_sweep(
            results, title=f"Fig. 3 (Complete Bipartite, N={ts.num_terminals}): "
                           "throughput GB/s vs buffer size")

        data = run_panel(FIG3, FIG3.panel("bipartite"), buffers=SMALL_BUFFERS)
        assert data.tables[0].text == expected

    def test_fig4_twisted_byte_identical(self):
        fabric = cerio_hpc_fabric()

        class _Bound:
            def __init__(self, buf, tp):
                self.buffer_bytes = buf
                self.throughput = tp

        spec = "twisted:dim=3"
        schemes = {"MCF-extP/C": "mcf-extp", "EwSP/C": "ewsp", "SSSP/C": "sssp"}
        results = {}
        optimal_flow = None
        for label, scheme in schemes.items():
            done = Plan(Scenario(topology=spec, scheme=scheme, fabric="hpc",
                                 max_denominator=16,
                                 buffers=SMALL_BUFFERS)).run()
            if label == "MCF-extP/C":
                optimal_flow = done.concurrent_flow
            results[label] = done.sim_results
        topo = from_spec(spec)
        bound = steady_state_throughput(topo.num_nodes, optimal_flow, fabric)
        results = {"Upper Bound": [_Bound(b, bound) for b in SMALL_BUFFERS],
                   **results}
        expected = format_throughput_sweep(
            results, title=f"Fig. 4 (3D Twisted Hypercube, N={topo.num_nodes}): "
                           "throughput GB/s vs buffer size")

        data = run_panel(FIG4, FIG4.panel("twisted"), buffers=SMALL_BUFFERS)
        assert data.tables[0].text == expected

    def test_table1_byte_identical(self):
        hpc = cerio_hpc_fabric()
        ml = a100_ml_fabric()
        rows = [
            ["Schedules", "Path-based", "Link-based"],
            ["Topology focus", "Bisection bandwidth", "Node bandwidth"],
            ["Flow control", "Cut-through", "Store-and-forward"],
            ["NIC forwarding", str(hpc.nic_forwarding), str(ml.nic_forwarding)],
            ["Link bandwidth (GB/s)", f"{hpc.link_bandwidth / 1e9:.3f}",
             f"{ml.link_bandwidth / 1e9:.3f}"],
            ["Injection BW (GB/s)",
             f"{(hpc.injection_bandwidth or 0) / 1e9:.3f}",
             "= d*b" if ml.injection_bandwidth is None
             else f"{ml.injection_bandwidth / 1e9:.3f}"],
            ["Forwarding BW (GB/s)",
             f"{(hpc.forwarding_bandwidth or 0) / 1e9:.3f}", "= injection"],
            ["Per-step latency (us)", f"{hpc.per_step_latency * 1e6:.1f}",
             f"{ml.per_step_latency * 1e6:.1f}"],
        ]
        expected_static = format_table(
            ["Property", "HPC (Cerio-like)", "ML accelerator (A100-like)"], rows,
            title="Table 1: fabric models used by the simulator")
        assert TABLE1.static_table().text == expected_static

        buf = 2 ** 26
        full = Plan(Scenario(topology="torus:dims=3x3", scheme="mcf-extp",
                             fabric="hpc", buffers=(buf,))).run()
        capped = Plan(Scenario(topology="torus:dims=3x3", scheme="mcf-extp",
                               fabric="hpc:forwarding_gbps=100",
                               buffers=(buf,))).run()
        expected_effect = format_table(
            ["fabric", "throughput GB/s"],
            [["forwarding 300 Gbps", full.sim_results[0].throughput / 1e9],
             ["forwarding 100 Gbps", capped.sim_results[0].throughput / 1e9]],
            title="Forwarding-bandwidth effect (same MCF-extP schedule, "
                  "3x3 torus, 64 MiB)")
        data = run_panel(TABLE1, TABLE1.panel("forwarding"))
        assert data.tables[-1].text == expected_effect


class TestReportCLI:
    def test_report_fast_subset_writes_stamped_index(self, tmp_path, capsys):
        out = str(tmp_path / "report")
        assert main(["report", "--fast", "--only", "table1", "--out", out]) == 0
        captured = capsys.readouterr()
        assert "table1" in captured.out
        assert "lp-cache:" in captured.err and "new LP solves:" in captured.err
        index = (tmp_path / "report" / "index.md").read_text()
        assert "git SHA" in index
        assert "new LP solves:" in index
        assert "| table1 | table | ok |" in index       # per-artifact timing row
        assert "Table 1: fabric models used by the simulator" in index

    def test_report_rejects_unknown_artifact(self, tmp_path):
        with pytest.raises(ValueError):
            main(["report", "--only", "fig99", "--out", str(tmp_path)])

    def test_report_list(self, capsys):
        assert main(["report", "--list"]) == 0
        out = capsys.readouterr().out
        for spec_id in REGISTRY:
            assert spec_id in out


class TestTable:
    def test_throughput_table_rows_mirror_text(self):
        from repro.report.aggregate import Point, throughput_table

        series = {"A": [Point(1024.0, 2e9), Point(2048.0, 4e9)]}
        table = throughput_table("p", "T", series)
        assert isinstance(table, Table)
        assert table.headers == ["buffer_bytes", "A"]
        assert table.rows == [[1024, 2.0], [2048, 4.0]]
        assert "1.0KiB" in table.text and "2.0KiB" in table.text
