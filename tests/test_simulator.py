"""Tests for the fabric simulator: events, fluid flows, step simulation, collectives."""

import pytest

from repro.schedule import Chunk, LinkSchedule, LinkSendOp
from repro.simulator import (
    GBPS,
    EventQueue,
    FabricModel,
    FluidFlow,
    a100_ml_fabric,
    alltoall_time_upper_bound,
    cerio_hpc_fabric,
    ideal_fabric,
    run_link_collective,
    run_routed_collective,
    simulate_flows,
    simulate_link_schedule,
    steady_state_throughput,
    throughput_sweep,
    throughput_upper_bound_curve,
)
from repro.topology import complete, hypercube, ring


class TestEventQueue:
    def test_events_fire_in_time_order(self):
        q = EventQueue()
        fired = []
        q.schedule(2.0, lambda: fired.append("b"))
        q.schedule(1.0, lambda: fired.append("a"))
        q.schedule(3.0, lambda: fired.append("c"))
        q.run()
        assert fired == ["a", "b", "c"]
        assert q.now == 3.0

    def test_ties_fire_in_insertion_order(self):
        q = EventQueue()
        fired = []
        q.schedule(1.0, lambda: fired.append(1))
        q.schedule(1.0, lambda: fired.append(2))
        q.run()
        assert fired == [1, 2]

    def test_cancellation(self):
        q = EventQueue()
        fired = []
        ev = q.schedule(1.0, lambda: fired.append("x"))
        ev.cancel()
        q.run()
        assert fired == []

    def test_run_until(self):
        q = EventQueue()
        fired = []
        q.schedule(1.0, lambda: fired.append(1))
        q.schedule(5.0, lambda: fired.append(2))
        q.run(until=2.0)
        assert fired == [1]

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            EventQueue().schedule(-1.0, lambda: None)


class TestFabricModel:
    def test_effective_injection_defaults_to_degree_times_link(self):
        fabric = FabricModel(link_bandwidth=10.0, injection_bandwidth=None)
        assert fabric.effective_injection(4) == 40.0

    def test_injection_limited(self):
        fabric = cerio_hpc_fabric()          # 100 Gbps injection, 25 Gbps links
        assert fabric.injection_limited(6)   # 150 Gbps NIC > 100 Gbps host
        assert not fabric.injection_limited(3)

    def test_presets(self):
        assert cerio_hpc_fabric().nic_forwarding
        assert not a100_ml_fabric().nic_forwarding
        assert ideal_fabric().per_step_latency == 0.0
        assert cerio_hpc_fabric().link_bandwidth == pytest.approx(25 * GBPS)


class TestFluidFlowSimulator:
    def test_single_flow_serialization_time(self):
        topo = ring(3)
        fabric = ideal_fabric(link_bandwidth=100.0)
        res = simulate_flows(topo, [FluidFlow(path=(0, 1), size_bytes=1000.0)], fabric)
        assert res.completion_time == pytest.approx(10.0)

    def test_two_flows_share_a_link_fairly(self):
        topo = ring(3)
        fabric = ideal_fabric(link_bandwidth=100.0)
        flows = [FluidFlow(path=(0, 1), size_bytes=1000.0),
                 FluidFlow(path=(0, 1, 2), size_bytes=1000.0)]
        res = simulate_flows(topo, flows, fabric)
        # Both share link (0,1) at 50 B/s; after the first finishes at t=20 the
        # second has already streamed through (cut-through), so both finish at 20.
        assert res.completion_time == pytest.approx(20.0)

    def test_disjoint_flows_finish_independently(self):
        topo = complete(4)
        fabric = ideal_fabric(link_bandwidth=100.0)
        flows = [FluidFlow(path=(0, 1), size_bytes=500.0),
                 FluidFlow(path=(2, 3), size_bytes=1000.0)]
        res = simulate_flows(topo, flows, fabric)
        assert res.flow_completion_times[0] == pytest.approx(5.0)
        assert res.flow_completion_times[1] == pytest.approx(10.0)

    def test_latency_added_per_hop(self):
        topo = ring(4)
        fabric = FabricModel(link_bandwidth=100.0, per_hop_latency=1e-3,
                             per_message_overhead=2e-3, per_step_latency=0.0)
        res = simulate_flows(topo, [FluidFlow(path=(0, 1, 2, 3), size_bytes=100.0)], fabric)
        assert res.completion_time == pytest.approx(1.0 + 3e-3 + 2e-3)

    def test_injection_cap_slows_fanout(self):
        topo = complete(4)
        capped = FabricModel(link_bandwidth=100.0, injection_bandwidth=100.0,
                             per_hop_latency=0.0, per_message_overhead=0.0,
                             per_step_latency=0.0)
        uncapped = ideal_fabric(link_bandwidth=100.0)
        flows = [FluidFlow(path=(0, d), size_bytes=300.0) for d in (1, 2, 3)]
        slow = simulate_flows(topo, flows, capped).completion_time
        fast = simulate_flows(topo, flows, uncapped).completion_time
        assert slow == pytest.approx(3 * fast, rel=1e-6)

    def test_zero_byte_flow(self):
        topo = ring(3)
        res = simulate_flows(topo, [FluidFlow(path=(0, 1), size_bytes=0.0)],
                             ideal_fabric())
        assert res.completion_time == pytest.approx(0.0)

    def test_empty_flow_list(self):
        assert simulate_flows(ring(3), [], ideal_fabric()).completion_time == 0.0

    def test_conservation_of_total_bytes(self):
        topo = hypercube(2)
        flows = [FluidFlow(path=(0, 1, 3), size_bytes=100.0),
                 FluidFlow(path=(0, 2), size_bytes=50.0)]
        res = simulate_flows(topo, flows, ideal_fabric())
        assert res.total_bytes == pytest.approx(150.0)
        assert res.max_link_bytes == pytest.approx(100.0)


class TestStepSimulator:
    def _two_step_schedule(self):
        topo = ring(3)
        ops = []
        for s, d in topo.commodities():
            path = [s]
            while path[-1] != d:
                path.append((path[-1] + 1) % 3)
            for i, (u, v) in enumerate(zip(path[:-1], path[1:]), start=1):
                ops.append(LinkSendOp(Chunk(s, d, 0.0, 1.0), u, v, i))
        return LinkSchedule(topo, 2, ops)

    def test_step_time_from_busiest_link(self):
        schedule = self._two_step_schedule()
        fabric = FabricModel(link_bandwidth=100.0, per_step_latency=0.0,
                             per_message_overhead=0.0, nic_forwarding=False)
        res = simulate_link_schedule(schedule, shard_bytes=100.0, fabric=fabric)
        # Step 1: each link carries 2 shards -> 2s; step 2: 1 shard -> 1s.
        assert res.step_times == pytest.approx([2.0, 1.0])
        assert res.total_time == pytest.approx(3.0)

    def test_per_step_latency_added(self):
        schedule = self._two_step_schedule()
        fabric = FabricModel(link_bandwidth=100.0, per_step_latency=0.5,
                             per_message_overhead=0.0, nic_forwarding=False)
        res = simulate_link_schedule(schedule, shard_bytes=100.0, fabric=fabric)
        assert res.total_time == pytest.approx(4.0)

    def test_algorithm_bandwidth(self):
        schedule = self._two_step_schedule()
        fabric = FabricModel(link_bandwidth=100.0, per_step_latency=0.0,
                             per_message_overhead=0.0, nic_forwarding=False)
        res = simulate_link_schedule(schedule, shard_bytes=100.0, fabric=fabric)
        assert res.algorithm_bandwidth == pytest.approx(2 * 100.0 / 3.0)

    def test_channels_reduce_overhead_only(self):
        schedule = self._two_step_schedule()
        fabric = FabricModel(link_bandwidth=100.0, per_step_latency=0.0,
                             per_message_overhead=1.0, nic_forwarding=False)
        one = simulate_link_schedule(schedule, 100.0, fabric, num_channels=1).total_time
        two = simulate_link_schedule(schedule, 100.0, fabric, num_channels=2).total_time
        assert two < one


class TestCollectiveRunner:
    def test_link_collective_throughput_near_bound(self, cube3, cube3_link_schedule):
        fabric = a100_ml_fabric()
        result = run_link_collective(cube3_link_schedule, buffer_bytes=2 ** 28, fabric=fabric)
        bound = steady_state_throughput(8, 0.25, fabric)
        assert result.throughput <= bound + 1e-6
        assert result.throughput >= 0.9 * bound

    def test_routed_collective_throughput_near_bound(self, genkautz_3_10,
                                                     genkautz_extp,
                                                     genkautz_routed_schedule):
        fabric = cerio_hpc_fabric()
        result = run_routed_collective(genkautz_routed_schedule, buffer_bytes=2 ** 28,
                                       fabric=fabric)
        bound = steady_state_throughput(10, genkautz_extp.concurrent_flow, fabric)
        assert result.throughput <= bound * 1.001
        assert result.throughput >= 0.85 * bound

    def test_throughput_monotone_in_buffer_size(self, cube3_link_schedule):
        fabric = a100_ml_fabric()
        sweep = throughput_sweep(cube3_link_schedule, [2 ** 16, 2 ** 20, 2 ** 24, 2 ** 28],
                                 fabric=fabric)
        tps = [r.throughput for r in sweep]
        assert tps == sorted(tps)

    def test_sweep_supports_routed_schedules(self, genkautz_routed_schedule):
        sweep = throughput_sweep(genkautz_routed_schedule, [2 ** 20, 2 ** 24],
                                 fabric=cerio_hpc_fabric())
        assert len(sweep) == 2
        assert all(r.schedule_kind == "routed" for r in sweep)

    def test_sweep_rejects_unknown_schedule_type(self):
        with pytest.raises(TypeError):
            throughput_sweep(object(), [1024])


class TestCostModel:
    def test_steady_state_throughput_paper_number(self):
        fabric = FabricModel(link_bandwidth=3.125e9)
        assert steady_state_throughput(27, 2 / 27, fabric) == pytest.approx(6.02e9, rel=1e-2)

    def test_upper_bound_curve_monotone_and_saturating(self, cube3):
        fabric = a100_ml_fabric()
        buffers = [2 ** k for k in range(14, 30, 2)]
        curve = throughput_upper_bound_curve(cube3, 0.25, buffers, fabric, num_steps=4)
        assert all(a <= b + 1e-6 for a, b in zip(curve, curve[1:]))
        assert curve[-1] <= steady_state_throughput(8, 0.25, fabric) + 1e-6
        assert curve[-1] >= 0.9 * steady_state_throughput(8, 0.25, fabric)

    def test_alltoall_time_upper_bound_positive(self, cube3):
        t = alltoall_time_upper_bound(cube3, 0.25, shard_bytes=2 ** 20,
                                      fabric=cerio_hpc_fabric())
        assert t > 0
