"""Tests for the sparse LP builder / HiGHS wrapper (repro.core.solver)."""

import pytest

from repro.core.solver import LPBuilder, SolverError, VariableIndex


class TestVariableIndex:
    def test_add_is_idempotent(self):
        idx = VariableIndex()
        assert idx.add("x") == 0
        assert idx.add("y") == 1
        assert idx.add("x") == 0
        assert len(idx) == 2

    def test_lookup_and_keys(self):
        idx = VariableIndex()
        idx.add(("f", 1, 2))
        assert ("f", 1, 2) in idx
        assert idx[("f", 1, 2)] == 0
        assert idx.keys() == [("f", 1, 2)]
        assert idx.get("missing") is None


class TestLPBuilder:
    def test_simple_maximization(self):
        lp = LPBuilder()
        lp.add_variable("x", lb=0.0, objective=1.0)
        lp.add_variable("y", lb=0.0, objective=1.0)
        lp.add_le([("x", 1.0), ("y", 2.0)], 4.0)
        lp.add_le([("x", 3.0), ("y", 1.0)], 6.0)
        sol = lp.solve(maximize=True)
        # max x + y s.t. x+2y<=4, 3x+y<=6 -> x=1.6, y=1.2
        assert sol.objective == pytest.approx(2.8)
        assert sol.value("x") == pytest.approx(1.6)
        assert sol.value("y") == pytest.approx(1.2)

    def test_simple_minimization_with_ge(self):
        lp = LPBuilder()
        lp.add_variable("x", lb=0.0, objective=2.0)
        lp.add_variable("y", lb=0.0, objective=3.0)
        lp.add_ge([("x", 1.0), ("y", 1.0)], 10.0)
        sol = lp.solve(maximize=False)
        assert sol.objective == pytest.approx(20.0)
        assert sol.value("x") == pytest.approx(10.0)

    def test_equality_constraint(self):
        lp = LPBuilder()
        lp.add_variable("x", lb=0.0, objective=1.0)
        lp.add_variable("y", lb=0.0, objective=1.0)
        lp.add_eq([("x", 1.0), ("y", 1.0)], 5.0)
        sol = lp.solve(maximize=False)
        assert sol.objective == pytest.approx(5.0)

    def test_upper_bound_on_variable(self):
        lp = LPBuilder()
        lp.add_variable("x", lb=0.0, ub=3.0, objective=1.0)
        sol = lp.solve(maximize=True)
        assert sol.objective == pytest.approx(3.0)

    def test_infeasible_raises(self):
        lp = LPBuilder()
        lp.add_variable("x", lb=0.0, objective=1.0)
        lp.add_le([("x", 1.0)], 1.0)
        lp.add_ge([("x", 1.0)], 2.0)
        with pytest.raises(SolverError):
            lp.solve()

    def test_unbounded_raises(self):
        lp = LPBuilder()
        lp.add_variable("x", lb=0.0, objective=1.0)
        with pytest.raises(SolverError):
            lp.solve(maximize=True)

    def test_empty_problem(self):
        lp = LPBuilder()
        sol = lp.solve()
        assert sol.objective == 0.0
        assert sol.values == {}

    def test_zero_coefficient_terms_dropped(self):
        lp = LPBuilder()
        lp.add_variable("x", lb=0.0, objective=1.0)
        lp.add_le([("x", 0.0)], 5.0)        # vacuous, should not constrain
        lp.add_le([("x", 1.0)], 2.0)
        sol = lp.solve(maximize=True)
        assert sol.objective == pytest.approx(2.0)

    def test_infeasible_empty_constraint_detected(self):
        lp = LPBuilder()
        lp.add_variable("x")
        with pytest.raises(ValueError):
            lp.add_le([("x", 0.0)], -1.0)
        with pytest.raises(ValueError):
            lp.add_eq([("x", 0.0)], 3.0)

    def test_constraint_and_variable_counts(self):
        lp = LPBuilder()
        lp.add_variable("a")
        lp.add_variable("b")
        lp.add_le([("a", 1.0)], 1.0)
        lp.add_eq([("b", 1.0)], 0.5)
        assert lp.num_variables == 2
        assert lp.num_constraints == 2

    def test_set_objective_overwrites(self):
        lp = LPBuilder()
        lp.add_variable("x", lb=0.0, ub=1.0, objective=1.0)
        lp.set_objective("x", -1.0)
        sol = lp.solve(maximize=False)
        assert sol.value("x") == pytest.approx(1.0)

    def test_solution_default_for_unknown_key(self):
        lp = LPBuilder()
        lp.add_variable("x", lb=0.0, ub=1.0, objective=1.0)
        sol = lp.solve(maximize=True)
        assert sol.value("nope", default=-7.0) == -7.0
