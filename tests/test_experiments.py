"""Tests for the declarative experiment layer (repro.experiments).

Covers scenario hashing stability, the staged Plan pipeline with artifact
caching, grid expansion, streaming sweep runs, resume-from-JSONL, and the
headline cache guarantee: re-running the same sweep solves zero new LPs.
"""

import json

import pytest

from repro.engine import get_engine, reset_engine
from repro.engine.cache import SolutionCache
from repro.experiments import (
    Plan,
    Scenario,
    SweepGrid,
    completed_keys,
    configure_plan_cache,
    load_results,
    reset_plan_cache,
    run_scenarios,
    run_sweep,
    scenario_schema_version,
    sweep_stats,
    write_csv,
)
from repro.topology import hypercube


@pytest.fixture()
def fresh_caches():
    """Fresh engine + plan caches, restored afterwards (global state hygiene)."""
    reset_engine()
    reset_plan_cache()
    yield get_engine(), configure_plan_cache(enabled=True)
    reset_engine()
    reset_plan_cache()


def _stage_cache() -> SolutionCache:
    return SolutionCache(suffix=".stage.pkl", payload_type=object)


class TestScenarioHashing:
    def test_spec_and_object_topologies_hash_identically(self):
        a = Scenario(topology="hypercube:dim=3", scheme="ewsp")
        b = Scenario(topology=hypercube(3), scheme="ewsp")
        assert a.key() == b.key()

    def test_key_is_stable_across_constructions(self):
        make = lambda: Scenario(topology="torus:dims=3x3", scheme="mcf-extp",  # noqa: E731
                                buffers=[2 ** 20, 2 ** 24]).key()
        assert make() == make()

    def test_scheme_params_order_independent(self):
        a = Scenario(topology="hypercube:dim=2", scheme="ilp-disjoint",
                     scheme_params={"mip_rel_gap": 0.05, "time_limit": 120})
        b = Scenario(topology="hypercube:dim=2", scheme="ilp-disjoint",
                     scheme_params={"time_limit": 120, "mip_rel_gap": 0.05})
        assert a.key() == b.key()

    def test_content_fields_change_key(self):
        base = Scenario(topology="hypercube:dim=3", scheme="ewsp")
        assert base.key() != Scenario(topology="hypercube:dim=2", scheme="ewsp").key()
        assert base.key() != Scenario(topology="hypercube:dim=3", scheme="sssp").key()
        assert base.key() != Scenario(topology="hypercube:dim=3", scheme="ewsp",
                                      fabric="ml").key()

    def test_cosmetic_name_does_not_change_key(self):
        a = Scenario(topology="hypercube:dim=3", scheme="ewsp", name="labelled")
        b = Scenario(topology="hypercube:dim=3", scheme="ewsp")
        assert a.key() == b.key()

    def test_buffers_change_simulate_key_but_not_synthesize_key(self):
        a = Scenario(topology="hypercube:dim=3", scheme="ewsp", buffers=(2 ** 20,))
        b = Scenario(topology="hypercube:dim=3", scheme="ewsp", buffers=(2 ** 24,))
        assert a.stage_key("synthesize") == b.stage_key("synthesize")
        assert a.stage_key("lower") == b.stage_key("lower")
        assert a.key() != b.key()

    def test_auto_scheme_synthesize_key_tracks_fabric_forwarding(self):
        # "auto" forwarding resolves through the fabric, so an hpc (NIC) and
        # an ml (HOST) scenario must never share a synthesized schedule.
        hpc = Scenario(topology="hypercube:dim=2", fabric="hpc", scheme="auto")
        ml = Scenario(topology="hypercube:dim=2", fabric="ml", scheme="auto")
        assert hpc.stage_key("synthesize") != ml.stage_key("synthesize")
        # Schemes that ignore forwarding still share across fabrics.
        hpc_ewsp = Scenario(topology="hypercube:dim=2", fabric="hpc", scheme="ewsp")
        ml_ewsp = Scenario(topology="hypercube:dim=2", fabric="ml", scheme="ewsp")
        assert hpc_ewsp.stage_key("synthesize") == ml_ewsp.stage_key("synthesize")

    def test_auto_scheme_cached_branches_stay_distinct(self):
        from repro.core.mcf_path import PathSchedule
        from repro.core.mcf_timestepped import TimeSteppedFlow

        cache = _stage_cache()
        nic = Plan(Scenario(topology="hypercube:dim=2", fabric="hpc"),
                   cache=cache).run(through="synthesize")
        host = Plan(Scenario(topology="hypercube:dim=2", fabric="ml"),
                    cache=cache).run(through="synthesize")
        assert isinstance(nic.schedule, PathSchedule)
        assert isinstance(host.schedule, TimeSteppedFlow)

    def test_max_denominator_changes_lower_key_only(self):
        a = Scenario(topology="hypercube:dim=3", scheme="ewsp", max_denominator=16)
        b = Scenario(topology="hypercube:dim=3", scheme="ewsp", max_denominator=64)
        assert a.stage_key("synthesize") == b.stage_key("synthesize")
        assert a.stage_key("lower") != b.stage_key("lower")

    def test_unsupported_workload_rejected(self):
        with pytest.raises(ValueError):
            Scenario(topology="hypercube:dim=3", workload="allreduce")

    def test_from_dict_coerces_cli_strings(self):
        s = Scenario.from_dict({"topology": "hypercube:dim=3", "scheme": "ewsp",
                                "buffers": "1048576;16777216",
                                "max_denominator": "16", "decompose_ts": "true"})
        assert s.buffers == (1048576.0, 16777216.0)
        assert s.max_denominator == 16
        assert s.decompose_ts is True
        with pytest.raises(ValueError):
            Scenario.from_dict({"topology": "hypercube:dim=3", "bogus_field": 1})


class TestPlan:
    def test_stages_produce_expected_artifacts(self, bipartite44):
        plan = Plan(Scenario(topology=bipartite44, scheme="ewsp",
                             buffers=(2 ** 20, 2 ** 24)), cache=_stage_cache())
        synth = plan.run(through="synthesize")
        assert synth.schedule is not None and synth.lowered is None
        done = plan.run()
        assert done.validated
        assert len(done.sim_results) == 2
        assert done.concurrent_flow > 0
        assert done.all_to_all_time > 0

    def test_plan_matches_direct_computation(self, bipartite44):
        from repro.paths import ewsp_schedule
        from repro.schedule import chunk_path_schedule
        from repro.simulator import cerio_hpc_fabric, throughput_sweep

        direct = throughput_sweep(chunk_path_schedule(ewsp_schedule(bipartite44),
                                                      max_denominator=16),
                                  [2 ** 22], fabric=cerio_hpc_fabric())
        plan = Plan(Scenario(topology=bipartite44, scheme="ewsp", fabric="hpc",
                             max_denominator=16, buffers=(2 ** 22,)),
                    cache=_stage_cache())
        result = plan.run()
        assert result.sim_results[0].throughput == direct[0].throughput

    def test_shared_cache_serves_second_plan(self, bipartite44):
        cache = _stage_cache()
        scenario = Scenario(topology=bipartite44, scheme="sssp", buffers=(2 ** 20,))
        first = Plan(scenario, cache=cache).run()
        assert set(first.stage_cache.values()) == {"miss"}
        second = Plan(scenario, cache=cache).run()
        assert set(second.stage_cache.values()) == {"hit"}
        assert (second.sim_results[0].throughput
                == first.sim_results[0].throughput)

    def test_synthesize_artifact_shared_across_buffer_sizes(self, bipartite44):
        cache = _stage_cache()
        a = Plan(Scenario(topology=bipartite44, scheme="sssp", buffers=(2 ** 20,)),
                 cache=cache).run()
        b = Plan(Scenario(topology=bipartite44, scheme="sssp", buffers=(2 ** 24,)),
                 cache=cache).run()
        assert a.stage_cache["synthesize"] == "miss"
        assert b.stage_cache["synthesize"] == "hit"    # same schedule, new buffers
        assert b.stage_cache["simulate"] == "miss"

    def test_disk_tier_persists_stage_artifacts(self, bipartite44, tmp_path):
        scenario = Scenario(topology=bipartite44, scheme="sssp", buffers=(2 ** 20,))
        cache = SolutionCache(cache_dir=str(tmp_path), suffix=".stage.pkl",
                              payload_type=object)
        Plan(scenario, cache=cache).run()
        fresh = SolutionCache(cache_dir=str(tmp_path), suffix=".stage.pkl",
                              payload_type=object)
        result = Plan(scenario, cache=fresh).run()
        assert set(result.stage_cache.values()) == {"hit"}
        assert fresh.disk_hits == 4

    def test_tsmcf_scheme_with_host_bottleneck(self):
        plan = Plan(Scenario(topology="torus:dims=3x3", fabric="ml", scheme="tsmcf",
                             host_bandwidth=8.0 / 3.0), cache=_stage_cache())
        result = plan.run(through="synthesize")
        assert result.schedule.meta.get("augmented") is True
        assert result.num_terminals == 9
        assert result.schedule.topology.num_nodes == 27

    def test_unknown_scheme_is_an_error(self, bipartite44):
        plan = Plan(Scenario(topology=bipartite44, scheme="does-not-exist"),
                    cache=_stage_cache())
        with pytest.raises(KeyError):
            plan.run(through="synthesize")


class TestSweepGrid:
    def test_cartesian_expansion_order(self):
        grid = SweepGrid(base={"fabric": "hpc"},
                         axes={"topology": ["hypercube:dim=2", "hypercube:dim=3"],
                               "scheme": ["ewsp", "sssp"]})
        scenarios = grid.scenarios()
        assert len(grid) == 4 and len(scenarios) == 4
        assert [s.label() for s in scenarios] == [
            "hypercube:dim=2/ewsp", "hypercube:dim=2/sssp",
            "hypercube:dim=3/ewsp", "hypercube:dim=3/sssp"]

    def test_base_axis_overlap_rejected(self):
        with pytest.raises(ValueError):
            SweepGrid(base={"scheme": "ewsp"}, axes={"scheme": ["sssp"]})

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ValueError):
            SweepGrid.from_dict({"base": {}, "axis": {}})


class TestRunSweep:
    GRID = SweepGrid(base={"fabric": "hpc", "buffers": [2 ** 20], "max_denominator": 16},
                     axes={"topology": ["hypercube:dim=2", "bipartite:left=3,right=3"],
                           "scheme": ["ewsp", "sssp"]})

    def test_streaming_jsonl_records(self, tmp_path):
        out = str(tmp_path / "sweep.jsonl")
        results = run_sweep(self.GRID.scenarios(), out_path=out, jobs=2,
                            cache=_stage_cache())
        assert [r.status for r in results] == ["ok"] * 4
        records = load_results(out)
        assert len(records) == 4
        for rec in records:
            assert rec["schema_version"] == scenario_schema_version()
            assert rec["status"] == "ok"
            assert len(rec["key"]) == 64
            assert rec["metrics"]["concurrent_flow"] > 0
            assert rec["timings"]["total_seconds"] >= 0
        assert sorted(completed_keys(out)) == sorted(r.key for r in results)

    def test_error_scenarios_recorded_not_raised(self, tmp_path):
        out = str(tmp_path / "err.jsonl")
        scenarios = [Scenario(topology="bipartite:left=3,right=3", scheme="dor")]
        results = run_sweep(scenarios, out_path=out, cache=_stage_cache())
        assert results[0].status == "error" and results[0].error
        assert load_results(out)[0]["status"] == "error"
        assert completed_keys(out) == []

    def test_resume_skips_completed_and_retries_errors(self, tmp_path):
        out = str(tmp_path / "resume.jsonl")
        scenarios = self.GRID.scenarios()
        run_sweep(scenarios, out_path=out, cache=_stage_cache())
        # Simulate a killed sweep: keep the first two records (plus a torn
        # trailing line, which the loader must ignore).
        records = [json.dumps(r, sort_keys=True) for r in load_results(out)]
        with open(out, "w") as fh:
            fh.write("\n".join(records[:2]) + "\n" + records[2][:37])
        resumed = run_sweep(scenarios, out_path=out, resume=True,
                            cache=_stage_cache())
        assert [r.resumed for r in resumed] == [True, True, False, False]
        assert [r.status for r in resumed] == ["ok"] * 4
        assert len(completed_keys(out)) == 4
        # Resumed metrics come from the file and match the recomputed shape.
        assert resumed[0].metrics["concurrent_flow"] > 0

    def test_resume_ignores_records_from_shallower_runs(self, tmp_path):
        out = str(tmp_path / "shallow.jsonl")
        scenarios = [Scenario(topology="hypercube:dim=2", scheme="ewsp",
                              buffers=(2 ** 20,), max_denominator=16)]
        run_sweep(scenarios, out_path=out, through="synthesize",
                  cache=_stage_cache())
        assert load_results(out)[0]["through"] == "synthesize"
        # A full-simulate sweep must not accept the synthesize-only record.
        results = run_sweep(scenarios, out_path=out, resume=True,
                            through="simulate", cache=_stage_cache())
        assert results[0].resumed is False
        assert "throughput_bytes_per_s" in results[0].metrics
        # ...but a synthesize-only resume accepts the full record just written.
        again = run_sweep(scenarios, out_path=out, resume=True,
                          through="synthesize", cache=_stage_cache())
        assert again[0].resumed is True

    def test_rerun_solves_zero_new_lps(self, tmp_path, fresh_caches):
        engine, _plan_cache = fresh_caches
        grid = SweepGrid(base={"fabric": "hpc", "buffers": [2 ** 20],
                               "max_denominator": 16, "scheme": "mcf-extp"},
                         axes={"topology": ["hypercube:dim=2",
                                            "bipartite:left=3,right=3"]})
        run_sweep(grid.scenarios(), out_path=str(tmp_path / "a.jsonl"))
        misses_after_first = engine.cache.misses
        assert misses_after_first > 0
        results = run_sweep(grid.scenarios(), out_path=str(tmp_path / "b.jsonl"))
        assert engine.cache.misses == misses_after_first
        assert all(set(r.stage_cache.values()) == {"hit"} for r in results)

    def test_sweep_stats_aggregation(self, tmp_path):
        out = str(tmp_path / "stats.jsonl")
        results = run_sweep(self.GRID.scenarios(), out_path=out, cache=_stage_cache())
        stats = sweep_stats(results)
        assert stats["scenarios"] == 4 and stats["ok"] == 4
        assert stats["errors"] == 0 and stats["resumed"] == 0
        assert stats["stage_misses"] == 16

    def test_write_csv(self, tmp_path):
        results = run_scenarios(self.GRID.scenarios()[:2], cache=_stage_cache())
        path = tmp_path / "out.csv"
        write_csv(results, str(path))
        lines = path.read_text().strip().splitlines()
        assert lines[0].startswith("key,label,status")
        assert len(lines) == 3    # header + 2 scenarios x 1 buffer
